/**
 * @file
 * Environment-driven run configuration for benches and examples.
 *
 * The harness convention (documented in DESIGN.md) is:
 *   EVAL_CHIPS  number of chip samples per experiment (default 30)
 *   EVAL_SEED   master RNG seed (default 1)
 *   EVAL_FAST   when "1", shrink sweeps for smoke runs
 *   EVAL_APPS   comma-separated subset of the workload suite
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eval {

/** Read an integer env var, or return fallback when unset/invalid. */
std::int64_t envInt(const char *name, std::int64_t fallback);

/** Read a double env var, or return fallback when unset/invalid. */
double envDouble(const char *name, double fallback);

/** Read a string env var, or return fallback when unset. */
std::string envString(const char *name, const std::string &fallback);

/** Read a boolean ("1"/"true"/"yes") env var. */
bool envBool(const char *name, bool fallback);

/** Whether an env var is set to a non-empty value. */
bool envHas(const char *name);

/** Split a comma-separated string into trimmed non-empty tokens. */
std::vector<std::string> splitCsvList(const std::string &s);

/** Harness run configuration assembled from the environment. */
struct RunConfig
{
    int chips = 30;
    std::uint64_t seed = 1;
    bool fast = false;
    std::vector<std::string> apps;   ///< empty = full suite

    /** Build from the EVAL_* environment variables. */
    static RunConfig fromEnv();
};

} // namespace eval

