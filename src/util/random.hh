/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic components (variation maps, path sensitization,
 * workload generation, fuzzy-controller training) draw from Rng so that
 * every experiment is reproducible from a single seed.  The generator
 * is xoshiro256++, seeded through splitmix64; child streams can be
 * forked deterministically so that modules do not perturb each other's
 * random sequences.
 */

#pragma once

#include <array>
#include <cstdint>

namespace eval {

/** Splittable xoshiro256++ PRNG with Gaussian sampling support. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Standard normal deviate (Box-Muller with caching). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Fork a statistically independent child stream.  The child is a
     * deterministic function of this generator's current state and the
     * given stream label, so forks with distinct labels from the same
     * parent state never collide.
     */
    Rng fork(std::uint64_t streamLabel);

    /**
     * Derive child stream @p streamId without touching this
     * generator's state (split is const and fork never advances the
     * parent, so split(i) == fork(i) for every i).  This is the
     * parallel-safe seeding primitive: a per-chip task seeded with
     * `master.split(chipIndex)` draws the same sequence whether the
     * chips run serially or fanned out across a thread pool.
     */
    Rng split(std::uint64_t streamId) const;

    /**
     * Complete generator state for snapshotting: the xoshiro words
     * plus the Box-Muller spare, so a restored generator continues the
     * exact sequence (including a pending cached gaussian).
     */
    struct State
    {
        std::array<std::uint64_t, 4> words{};
        double cachedGaussian = 0.0;
        bool hasCachedGaussian = false;
    };

    State state() const;

    /** Rebuild a generator from a snapshotted state. */
    static Rng fromState(const State &state);

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace eval

