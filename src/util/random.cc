#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace eval {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : state_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 significant bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    EVAL_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t streamLabel)
{
    return split(streamLabel);
}

Rng
Rng::split(std::uint64_t streamId) const
{
    // Derive the child seed from the parent state and the label so
    // splits are reproducible and distinct per label.
    std::uint64_t mix = state_[0] ^ rotl(state_[2], 29) ^
                        (streamId * 0xd1342543de82ef95ULL + 1);
    return Rng(splitmix64(mix));
}

Rng::State
Rng::state() const
{
    State s;
    s.words = state_;
    s.cachedGaussian = cachedGaussian_;
    s.hasCachedGaussian = hasCachedGaussian_;
    return s;
}

Rng
Rng::fromState(const State &state)
{
    Rng rng;
    rng.state_ = state.words;
    rng.cachedGaussian_ = state.cachedGaussian;
    rng.hasCachedGaussian_ = state.hasCachedGaussian;
    return rng;
}

} // namespace eval
