#include "util/config.hh"

#include <cstdlib>

namespace eval {

std::int64_t
envInt(const char *name, std::int64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const long long parsed = std::strtoll(v, &end, 10);
    return (end && *end == '\0') ? parsed : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    return (end && *end == '\0') ? parsed : fallback;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::string(v) : fallback;
}

bool
envHas(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v;
}

bool
envBool(const char *name, bool fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    const std::string s(v);
    return s == "1" || s == "true" || s == "yes" || s == "on";
}

std::vector<std::string>
splitCsvList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    auto flush = [&out, &cur]() {
        std::size_t b = cur.find_first_not_of(" \t");
        std::size_t e = cur.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.push_back(cur.substr(b, e - b + 1));
        cur.clear();
    };
    for (char c : s) {
        if (c == ',')
            flush();
        else
            cur.push_back(c);
    }
    flush();
    return out;
}

RunConfig
RunConfig::fromEnv()
{
    RunConfig cfg;
    cfg.chips = static_cast<int>(envInt("EVAL_CHIPS", 30));
    cfg.seed = static_cast<std::uint64_t>(envInt("EVAL_SEED", 1));
    cfg.fast = envBool("EVAL_FAST", false);
    cfg.apps = splitCsvList(envString("EVAL_APPS", ""));
    if (cfg.chips < 1)
        cfg.chips = 1;
    return cfg;
}

} // namespace eval
