/**
 * @file
 * Helpers for emitting series data (figure lines) and generic row
 * tables as CSV so bench and stats output can be replotted directly.
 */

#pragma once

#include <string>
#include <vector>

namespace eval {

/**
 * A named set of (x, y) series sharing an x axis, printed as one CSV
 * block: header "x,<name1>,<name2>,..." followed by rows.
 */
class SeriesSet
{
  public:
    SeriesSet(std::string title, std::string xName);

    /** Register a series; returns its index. */
    std::size_t addSeries(const std::string &name);

    /** Append an x sample; subsequent setValue calls fill that row. */
    void addSample(double x);

    /** Set series value for the most recent x sample. */
    void setValue(std::size_t series, double y);

    std::string csv(int precision = 6) const;
    void print(int precision = 6) const;

  private:
    std::string title_;
    std::string xName_;
    std::vector<std::string> names_;
    std::vector<double> xs_;
    std::vector<std::vector<double>> values_;   ///< [series][sample]
};

/**
 * A plain header-plus-rows CSV table (the stats-registry dump format).
 * Cells containing commas, quotes, or newlines are quoted per RFC 4180.
 */
class CsvTable
{
  public:
    explicit CsvTable(std::vector<std::string> header);

    void row(std::vector<std::string> cells);

    std::size_t rows() const { return rows_.size(); }

    std::string str() const;

    /** Write to @p path; returns false (with a warning) on I/O error. */
    bool write(const std::string &path) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace eval

