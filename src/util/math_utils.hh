/**
 * @file
 * Small numeric helpers shared across the library: Gaussian CDF and
 * quantile, interpolation, clamping, and robust fixed-point iteration.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace eval {

/** Standard normal cumulative distribution function. */
double normalCdf(double x);

/** Normal CDF with the given mean and standard deviation. */
double normalCdf(double x, double mean, double sigma);

/**
 * Inverse standard normal CDF (Acklam's rational approximation,
 * |relative error| < 1.15e-9 over (0, 1)).
 */
double normalQuantile(double p);

/** Linear interpolation between a and b by t in [0, 1]. */
double lerp(double a, double b, double t);

/** Clamp x to [lo, hi]. */
double clamp(double x, double lo, double hi);

/**
 * Piecewise-linear interpolation through sorted (x, y) samples.
 * Extrapolates flat beyond the endpoints.
 */
double interpolate(const std::vector<double> &xs,
                   const std::vector<double> &ys, double x);

/**
 * Damped fixed-point iteration x_{k+1} = (1-d)*x_k + d*f(x_k).
 *
 * @param f        update function
 * @param x0       starting point
 * @param damping  fraction of the new value blended in per step
 * @param tol      absolute convergence tolerance
 * @param maxIter  iteration budget
 * @param converged optional out-flag set false when the budget expires
 * @return the final iterate
 */
double fixedPoint(const std::function<double(double)> &f, double x0,
                  double damping = 0.5, double tol = 1e-6,
                  std::size_t maxIter = 200, bool *converged = nullptr);

/**
 * Golden-section search for the maximizer of a unimodal function on
 * [lo, hi].  Returns the x of the maximum found.
 */
double goldenSectionMax(const std::function<double(double)> &f,
                        double lo, double hi, double tol = 1e-4);

} // namespace eval

