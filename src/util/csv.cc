#include "util/csv.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace eval {

SeriesSet::SeriesSet(std::string title, std::string xName)
    : title_(std::move(title)), xName_(std::move(xName))
{
}

std::size_t
SeriesSet::addSeries(const std::string &name)
{
    names_.push_back(name);
    values_.emplace_back(xs_.size(),
                         std::numeric_limits<double>::quiet_NaN());
    return names_.size() - 1;
}

void
SeriesSet::addSample(double x)
{
    xs_.push_back(x);
    for (auto &v : values_)
        v.push_back(std::numeric_limits<double>::quiet_NaN());
}

void
SeriesSet::setValue(std::size_t series, double y)
{
    EVAL_ASSERT(series < values_.size(), "series index out of range");
    EVAL_ASSERT(!xs_.empty(), "setValue before any addSample");
    values_[series].back() = y;
}

std::string
SeriesSet::csv(int precision) const
{
    std::ostringstream os;
    os << "# " << title_ << "\n" << xName_;
    for (const auto &n : names_)
        os << "," << n;
    os << "\n" << std::setprecision(precision);
    for (std::size_t i = 0; i < xs_.size(); ++i) {
        os << xs_[i];
        for (const auto &v : values_) {
            os << ",";
            if (std::isnan(v[i]))
                os << "";
            else
                os << v[i];
        }
        os << "\n";
    }
    return os.str();
}

void
SeriesSet::print(int precision) const
{
    // eval-lint: allow(hyg-iostream) SeriesSet::print is the sanctioned
    // CSV console sink for bench output, parallel to TablePrinter.
    std::fputs(csv(precision).c_str(), stdout);
}

namespace {

std::string
escapeCsvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
CsvTable::row(std::vector<std::string> cells)
{
    EVAL_ASSERT(cells.size() == header_.size(),
                "CSV row width does not match the header");
    rows_.push_back(std::move(cells));
}

std::string
CsvTable::str() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < header_.size(); ++i)
        os << (i ? "," : "") << escapeCsvCell(header_[i]);
    os << "\n";
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << escapeCsvCell(row[i]);
        os << "\n";
    }
    return os.str();
}

bool
CsvTable::write(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    const std::string text = str();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (!ok)
        warn("short write to '", path, "'");
    return ok;
}

} // namespace eval
