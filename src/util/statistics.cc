#include "util/statistics.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace eval {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
RunningStats::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return count_ ? max_ : 0.0;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0)
{
    EVAL_ASSERT(hi > lo && bins > 0, "histogram needs hi > lo, bins > 0");
}

void
Histogram::add(double x, double weight)
{
    // NaN samples have no meaningful bin; drop them so quantile() and
    // render() stay NaN-free.  Infinities clamp to the edge bins like
    // any other out-of-range sample.
    if (std::isnan(x) || std::isnan(weight))
        return;
    double t = (x - lo_) / width_;
    if (std::isnan(t))
        t = 0.0;
    t = std::min(std::max(t, -1e18), 1e18);
    auto idx = static_cast<long>(std::floor(t));
    idx = std::max<long>(0, std::min<long>(idx,
              static_cast<long>(counts_.size()) - 1));
    counts_[static_cast<std::size_t>(idx)] += weight;
    total_ += weight;
}

void
Histogram::merge(const Histogram &other)
{
    EVAL_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                    counts_.size() == other.counts_.size(),
                "histogram merge requires identical bin layout");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binCenter(std::size_t i) const
{
    return binLow(i) + 0.5 * width_;
}

double
Histogram::quantile(double q) const
{
    EVAL_ASSERT(q >= 0.0 && q <= 1.0, "quantile domain is [0,1]");
    // Empty (or weightless) histogram: every quantile is the range
    // floor, never NaN — callers such as the stats-registry CSV dump
    // query p50/p90/p99 before any sample arrives.
    if (total_ <= 0.0)
        return lo_;
    const double target = q * total_;
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (cum + counts_[i] >= target) {
            const double frac =
                counts_[i] > 0 ? (target - cum) / counts_[i] : 0.0;
            return binLow(i) + frac * width_;
        }
        cum += counts_[i];
    }
    return hi_;
}

std::string
Histogram::render(std::size_t barWidth) const
{
    double peak = 0.0;
    for (double c : counts_)
        peak = std::max(peak, c);
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto len = static_cast<std::size_t>(
            peak > 0 ? counts_[i] / peak * static_cast<double>(barWidth)
                     : 0);
        os << binCenter(i) << "\t|" << std::string(len, '#') << "\n";
    }
    return os.str();
}

double
SampleSet::percentile(double p) const
{
    EVAL_ASSERT(p >= 0.0 && p <= 1.0, "percentile domain is [0,1]");
    // Defined, NaN-free result on no data (summary tables query
    // percentiles of cells that may have collected nothing).
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

} // namespace eval
