#include "util/arg_parser.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace eval {

ArgParser::ArgParser(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        if (arg.empty())
            EVAL_FATAL("empty option name");

        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            options_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            options_[arg] = argv[++i];
        } else {
            options_[arg] = "true";   // bare flag
        }
    }
}

bool
ArgParser::has(const std::string &key) const
{
    queried_[key] = true;
    return options_.count(key) > 0;
}

std::string
ArgParser::getString(const std::string &key,
                     const std::string &fallback) const
{
    queried_[key] = true;
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
}

std::int64_t
ArgParser::getInt(const std::string &key, std::int64_t fallback) const
{
    queried_[key] = true;
    const auto it = options_.find(key);
    if (it == options_.end())
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (!end || *end != '\0')
        EVAL_FATAL("option --", key, " expects an integer, got '",
                   it->second, "'");
    return v;
}

double
ArgParser::getDouble(const std::string &key, double fallback) const
{
    queried_[key] = true;
    const auto it = options_.find(key);
    if (it == options_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (!end || *end != '\0')
        EVAL_FATAL("option --", key, " expects a number, got '",
                   it->second, "'");
    return v;
}

bool
ArgParser::getBool(const std::string &key, bool fallback) const
{
    queried_[key] = true;
    const auto it = options_.find(key);
    if (it == options_.end())
        return fallback;
    return it->second == "true" || it->second == "1" ||
           it->second == "yes" || it->second == "on";
}

std::vector<std::string>
ArgParser::unusedKeys() const
{
    std::vector<std::string> unused;
    for (const auto &[key, value] : options_) {
        (void)value;
        if (!queried_.count(key))
            unused.push_back(key);
    }
    return unused;
}

} // namespace eval
