#include "util/math_utils.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace eval {

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x * M_SQRT1_2);
}

double
normalCdf(double x, double mean, double sigma)
{
    EVAL_ASSERT(sigma > 0.0, "normalCdf requires positive sigma");
    return normalCdf((x - mean) / sigma);
}

double
normalQuantile(double p)
{
    EVAL_ASSERT(p > 0.0 && p < 1.0, "normalQuantile domain is (0,1)");

    // Acklam's algorithm.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    const double phigh = 1.0 - plow;

    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
               ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    } else if (p <= phigh) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0]*r + a[1])*r + a[2])*r + a[3])*r + a[4])*r + a[5])*q /
               (((((b[0]*r + b[1])*r + b[2])*r + b[3])*r + b[4])*r + 1.0);
    } else {
        q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
               ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    }
}

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

double
clamp(double x, double lo, double hi)
{
    return std::min(std::max(x, lo), hi);
}

double
interpolate(const std::vector<double> &xs, const std::vector<double> &ys,
            double x)
{
    EVAL_ASSERT(xs.size() == ys.size() && !xs.empty(),
                "interpolate needs equal-size non-empty samples");
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    auto it = std::upper_bound(xs.begin(), xs.end(), x);
    std::size_t hi = static_cast<std::size_t>(it - xs.begin());
    std::size_t lo = hi - 1;
    const double span = xs[hi] - xs[lo];
    if (span <= 0.0)
        return ys[lo];
    return lerp(ys[lo], ys[hi], (x - xs[lo]) / span);
}

double
fixedPoint(const std::function<double(double)> &f, double x0, double damping,
           double tol, std::size_t maxIter, bool *converged)
{
    double x = x0;
    for (std::size_t i = 0; i < maxIter; ++i) {
        const double fx = f(x);
        const double next = (1.0 - damping) * x + damping * fx;
        if (std::abs(next - x) < tol) {
            if (converged)
                *converged = true;
            return next;
        }
        x = next;
    }
    if (converged)
        *converged = false;
    return x;
}

double
goldenSectionMax(const std::function<double(double)> &f, double lo, double hi,
                 double tol)
{
    EVAL_ASSERT(hi >= lo, "goldenSectionMax needs hi >= lo");
    const double invphi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = lo, b = hi;
    double c = b - invphi * (b - a);
    double d = a + invphi * (b - a);
    double fc = f(c), fd = f(d);
    while (b - a > tol) {
        if (fc > fd) {
            b = d; d = c; fd = fc;
            c = b - invphi * (b - a);
            fc = f(c);
        } else {
            a = c; c = d; fc = fd;
            d = a + invphi * (b - a);
            fd = f(d);
        }
    }
    return 0.5 * (a + b);
}

} // namespace eval
