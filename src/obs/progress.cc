#include "obs/progress.hh"

// eval-lint: counters-only progress counters are observational relaxed
// monotone ticks that no model code reads back (DESIGN.md Sec 5c).

#include <algorithm>
#include <chrono>

namespace eval {

namespace {

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

double
ProgressTracker::fraction() const
{
    const std::uint64_t t = total();
    if (t == 0)
        return 0.0;
    const std::uint64_t d = std::min(done(), t);
    return static_cast<double>(d) / static_cast<double>(t);
}

double
ProgressTracker::elapsedS() const
{
    const std::uint64_t start = startNs();
    if (start == 0)
        return 0.0;
    const std::uint64_t now = monotonicNs();
    return now > start ? static_cast<double>(now - start) / 1e9 : 0.0;
}

void
ProgressTracker::reset()
{
    total_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    startNs_.store(0, std::memory_order_relaxed);
}

void
ProgressTracker::stampStart()
{
    if (startNs_.load(std::memory_order_relaxed) != 0)
        return;
    std::uint64_t expected = 0;
    startNs_.compare_exchange_strong(expected, monotonicNs(),
                                     std::memory_order_relaxed);
}

ProgressRegistry &
ProgressRegistry::global()
{
    // Leaked: the sampler's exit-flush hook samples trackers during
    // process teardown, after function-local statics are destroyed.
    static ProgressRegistry *registry = new ProgressRegistry;
    return *registry;
}

ProgressTracker &
ProgressRegistry::tracker(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = trackers_.find(name);
    if (it == trackers_.end()) {
        it = trackers_
                 .emplace(name, std::make_unique<ProgressTracker>())
                 .first;
    }
    return *it->second;
}

ProgressTracker &
ProgressRegistry::declareTotal(const std::string &name,
                               const std::string &runId,
                               std::uint64_t total)
{
    std::int64_t delta = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::uint64_t &declared =
            declaredTotals_[std::make_pair(name, runId)];
        delta = static_cast<std::int64_t>(total) -
                static_cast<std::int64_t>(declared);
        declared = total;
    }
    ProgressTracker &t = tracker(name);
    if (delta != 0)
        t.adjustTotal(delta);
    return t;
}

bool
ProgressRegistry::hasDeclared(const std::string &name,
                              const std::string &runId) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return declaredTotals_.count(std::make_pair(name, runId)) > 0;
}

const ProgressTracker *
ProgressRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = trackers_.find(name);
    return it == trackers_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, const ProgressTracker *>>
ProgressRegistry::all() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, const ProgressTracker *>> out;
    out.reserve(trackers_.size());
    for (const auto &[name, tracker] : trackers_)
        out.emplace_back(name, tracker.get());
    return out;
}

std::size_t
ProgressRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return trackers_.size();
}

void
ProgressRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, tracker] : trackers_) {
        (void)name;
        tracker->reset();
    }
    // Zeroed trackers carry no declared work any more; forgetting the
    // declarations lets the next declareTotal() repopulate from zero.
    declaredTotals_.clear();
}

} // namespace eval
