#include "obs/metrics_sampler.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <sys/resource.h>
#include <unistd.h>

#include "obs/progress.hh"
#include "stats/stat_registry.hh"
#include "trace/exit_flush.hh"

namespace eval {

namespace {

/** EWMA smoothing for snapshot-to-snapshot throughput. */
constexpr double kRateAlpha = 0.3;

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
jsonEscapeInto(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    jsonEscapeInto(out, s);
    out += "\"";
    return out;
}

/** Format @p v so it always round-trips as a JSON double (a bare
 *  "%.6g" can print "0", which strict parsers type as Int and which
 *  would wobble the golden schema shape). */
std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    if (!std::strpbrk(buf, ".einf"))
        std::strcat(buf, ".0");
    return buf;
}

/** Write @p text to @p path via `<path>.tmp` + rename so concurrent
 *  readers see either the old file or the new one, never a torn
 *  intermediate. */
bool
writeFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return false;
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != text.size() || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    // Same directory, so the rename is atomic on POSIX.
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/** Read a small pseudo-file (/proc) fully; empty on failure. */
std::string
slurpSmall(const char *path)
{
    std::FILE *f = std::fopen(path, "r");
    if (!f)
        return "";
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    return std::string(buf, n);
}

std::string
promSanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            c = '_';
    }
    return out;
}

} // namespace

ResourceSample
sampleProcessResources()
{
    ResourceSample r;

    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        r.peakRssKb = ru.ru_maxrss; // Linux: KiB
        r.cpuUserS = static_cast<double>(ru.ru_utime.tv_sec) +
                     static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
        r.cpuSysS = static_cast<double>(ru.ru_stime.tv_sec) +
                    static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
    }

    // Current RSS: second field of /proc/self/statm, in pages.
    const std::string statm = slurpSmall("/proc/self/statm");
    if (!statm.empty()) {
        unsigned long sizePages = 0, rssPages = 0;
        if (std::sscanf(statm.c_str(), "%lu %lu", &sizePages,
                        &rssPages) == 2) {
            const long pageKb = sysconf(_SC_PAGESIZE) / 1024;
            r.rssKb = static_cast<long>(rssPages) *
                      (pageKb > 0 ? pageKb : 4);
        }
    }

    // Live thread count: "Threads:\tN" in /proc/self/status.
    const std::string status = slurpSmall("/proc/self/status");
    const std::size_t pos = status.find("Threads:");
    if (pos != std::string::npos) {
        long n = 0;
        if (std::sscanf(status.c_str() + pos, "Threads: %ld", &n) == 1)
            r.threads = n;
    }

    return r;
}

MetricsSampler::~MetricsSampler() { stop(); }

MetricsSampler &
MetricsSampler::global()
{
    static MetricsSampler *s = new MetricsSampler; // usable during exit
    return *s;
}

void
MetricsSampler::configure(const SamplerConfig &config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    if (config_.intervalMs == 0)
        config_.intervalMs = 1;
    if (config_.historyCap == 0)
        config_.historyCap = 1;
    seq_ = 0;
    published_ = 0;
    originNs_ = monotonicNs();
    finalPublished_ = false;
    history_.clear();
    rates_.clear();
}

SamplerConfig
MetricsSampler::config() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return config_;
}

bool
MetricsSampler::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return running_;
}

void
MetricsSampler::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (running_)
            return;
        running_ = true;
        stopRequested_ = false;
        finalPublished_ = false;
        if (originNs_ == 0)
            originNs_ = monotonicNs();
    }
    // Crash path: publish one last snapshot from the exit hook so an
    // aborted campaign still leaves its progress picture behind.
    exitFlushId_ = ExitFlush::global().add(
        "status-snapshot", [this] { flushFinal(); });
    thread_ = std::thread(&MetricsSampler::runLoop, this);
}

void
MetricsSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
    int flushId = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        running_ = false;
        flushId = exitFlushId_;
        exitFlushId_ = 0;
    }
    if (flushId != 0)
        ExitFlush::global().remove(flushId);
    flushFinal();
}

void
MetricsSampler::runLoop()
{
    publish(sampleNow(false));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopRequested_) {
        wake_.wait_for(lock,
                       std::chrono::milliseconds(config_.intervalMs),
                       [this] { return stopRequested_; });
        if (stopRequested_)
            break;
        lock.unlock();
        publish(sampleNow(false));
        lock.lock();
    }
}

void
MetricsSampler::flushFinal()
{
    // Park the sampler thread before the final sample: when this runs
    // from the exit hook the process is tearing down, and the loop
    // must not keep touching global registries underneath it.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopRequested_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable() &&
        thread_.get_id() != std::this_thread::get_id())
        thread_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (finalPublished_)
            return;
        finalPublished_ = true;
    }
    publish(sampleNow(true));
}

StatusSnapshot
MetricsSampler::sampleNow(bool final)
{
    // Registry walks take their own locks; keep ours released until
    // the snapshot is assembled.
    const auto trackers = ProgressRegistry::global().all();
    StatusSnapshot snap;
    snap.final = final;
    snap.pid = static_cast<long>(getpid());
    snap.resources = sampleProcessResources();
    snap.stats = StatRegistry::global().flat();
    const std::uint64_t nowNs = monotonicNs();

    std::lock_guard<std::mutex> lock(mutex_);
    snap.seq = ++seq_;
    snap.tool = config_.tool;
    snap.intervalMs = config_.intervalMs;
    snap.uptimeS =
        originNs_ != 0 && nowNs > originNs_
            ? static_cast<double>(nowNs - originNs_) / 1e9
            : 0.0;

    snap.progress.reserve(trackers.size());
    for (const auto &[name, tracker] : trackers) {
        ProgressSample p;
        p.name = name;
        p.total = tracker->total();
        p.done = tracker->done();
        p.fraction = tracker->fraction();
        p.elapsedS = tracker->elapsedS();

        RateState &rs = rates_[name];
        // Baseline for the first observation: the tracker's own
        // start stamp, so chips/sec is populated from snapshot one.
        std::uint64_t baseNs = rs.lastNs;
        if (baseNs == 0)
            baseNs = tracker->startNs();
        if (baseNs != 0 && nowNs > baseNs && p.done >= rs.lastDone) {
            const double dt =
                static_cast<double>(nowNs - baseNs) / 1e9;
            if (dt > 1e-6) {
                const double inst =
                    static_cast<double>(p.done - rs.lastDone) / dt;
                rs.rate = rs.lastNs == 0
                              ? inst
                              : kRateAlpha * inst +
                                    (1.0 - kRateAlpha) * rs.rate;
                rs.lastNs = nowNs;
                rs.lastDone = p.done;
            }
        }
        p.ratePerS = rs.rate;
        if (p.total != 0 && p.done >= p.total)
            p.etaS = 0.0;
        else if (p.total != 0 && rs.rate > 0.0)
            p.etaS = static_cast<double>(p.total - p.done) / rs.rate;
        snap.progress.push_back(std::move(p));
    }

    history_.push_back(snap);
    while (history_.size() > config_.historyCap)
        history_.pop_front();
    return snap;
}

bool
MetricsSampler::publish(const StatusSnapshot &snap)
{
    std::string statusPath, promPath;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Once the final snapshot is out (crash-path flush racing the
        // sampler thread's startup), a non-final publish must not
        // overwrite it: readers treat "final": true as end-of-run.
        if (finalPublished_ && !snap.final)
            return false;
        statusPath = config_.statusPath;
        promPath = config_.promPath;
    }
    bool ok = true;
    if (!statusPath.empty()) {
        if (writeFileAtomic(statusPath, statusJson(snap))) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++published_;
        } else {
            ok = false;
        }
    }
    if (!promPath.empty())
        ok = writeFileAtomic(promPath, prometheusText(snap)) && ok;
    return ok;
}

std::vector<StatusSnapshot>
MetricsSampler::history() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<StatusSnapshot>(history_.begin(),
                                       history_.end());
}

std::uint64_t
MetricsSampler::published() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return published_;
}

std::string
MetricsSampler::statusJson(const StatusSnapshot &snap)
{
    std::string out = "{\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"tool\": " + quoted(snap.tool) + ",\n";
    out += "  \"pid\": " + std::to_string(snap.pid) + ",\n";
    out += "  \"seq\": " + std::to_string(snap.seq) + ",\n";
    out += std::string("  \"final\": ") +
           (snap.final ? "true" : "false") + ",\n";
    out += "  \"uptime_s\": " + jsonDouble(snap.uptimeS) + ",\n";
    out += "  \"interval_ms\": " + std::to_string(snap.intervalMs) +
           ",\n";
    out += "  \"resources\": {\"rss_kb\": " +
           std::to_string(snap.resources.rssKb) +
           ", \"peak_rss_kb\": " +
           std::to_string(snap.resources.peakRssKb) +
           ", \"cpu_user_s\": " + jsonDouble(snap.resources.cpuUserS) +
           ", \"cpu_sys_s\": " + jsonDouble(snap.resources.cpuSysS) +
           ", \"threads\": " + std::to_string(snap.resources.threads) +
           "},\n";
    out += "  \"progress\": [";
    for (std::size_t i = 0; i < snap.progress.size(); ++i) {
        const ProgressSample &p = snap.progress[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"name\": " + quoted(p.name) +
               ", \"total\": " + std::to_string(p.total) +
               ", \"done\": " + std::to_string(p.done) +
               ", \"fraction\": " + jsonDouble(p.fraction) +
               ", \"rate_per_s\": " + jsonDouble(p.ratePerS) +
               ", \"eta_s\": " + jsonDouble(p.etaS) +
               ", \"elapsed_s\": " + jsonDouble(p.elapsedS) + "}";
    }
    out += snap.progress.empty() ? "],\n" : "\n  ],\n";
    out += "  \"stats\": {";
    for (std::size_t i = 0; i < snap.stats.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += quoted(snap.stats[i].first) + ": " +
               jsonDouble(snap.stats[i].second);
    }
    out += snap.stats.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string
MetricsSampler::prometheusText(const StatusSnapshot &snap)
{
    const std::string run = "{run=" + quoted(snap.tool);
    std::string out;
    out += "# TYPE eval_up gauge\n";
    out += "eval_up" + run + "} 1\n";
    out += "# TYPE eval_uptime_seconds gauge\n";
    out += "eval_uptime_seconds" + run + "} " +
           jsonDouble(snap.uptimeS) + "\n";
    out += "# TYPE eval_rss_kb gauge\n";
    out += "eval_rss_kb" + run + "} " +
           std::to_string(snap.resources.rssKb) + "\n";
    out += "# TYPE eval_peak_rss_kb gauge\n";
    out += "eval_peak_rss_kb" + run + "} " +
           std::to_string(snap.resources.peakRssKb) + "\n";
    out += "# TYPE eval_cpu_seconds_total counter\n";
    out += "eval_cpu_seconds_total" + run + ",mode=\"user\"} " +
           jsonDouble(snap.resources.cpuUserS) + "\n";
    out += "eval_cpu_seconds_total" + run + ",mode=\"system\"} " +
           jsonDouble(snap.resources.cpuSysS) + "\n";
    out += "# TYPE eval_threads gauge\n";
    out += "eval_threads" + run + "} " +
           std::to_string(snap.resources.threads) + "\n";
    if (!snap.progress.empty()) {
        out += "# TYPE eval_progress_total gauge\n";
        out += "# TYPE eval_progress_done gauge\n";
        out += "# TYPE eval_progress_rate_per_second gauge\n";
        for (const ProgressSample &p : snap.progress) {
            const std::string label =
                run + ",tracker=" + quoted(p.name) + "} ";
            out += "eval_progress_total" + label +
                   std::to_string(p.total) + "\n";
            out += "eval_progress_done" + label +
                   std::to_string(p.done) + "\n";
            out += "eval_progress_rate_per_second" + label +
                   jsonDouble(p.ratePerS) + "\n";
        }
    }
    if (!snap.stats.empty()) {
        out += "# TYPE eval_stat gauge\n";
        for (const auto &[name, value] : snap.stats) {
            out += "eval_stat{name=" + quoted(promSanitize(name)) +
                   "} " + jsonDouble(value) + "\n";
        }
    }
    return out;
}

} // namespace eval
