/**
 * @file
 * Live telemetry: a background thread that, at a configurable
 * interval (default 500 ms), snapshots the StatRegistry plus process
 * resources (current/peak RSS, user/sys CPU time, live thread count)
 * and every ProgressTracker into a bounded in-memory time series, and
 * atomically publishes the newest snapshot to the status sinks:
 *
 *  - a JSON status file (EVAL_STATUS_OUT / --status-out), written to
 *    `<path>.tmp` and renamed into place so a concurrent reader
 *    (`eval_top`, a shard supervisor, the future `evald` scraper)
 *    never sees a torn write;
 *  - optionally the same data as Prometheus-style text exposition
 *    (EVAL_STATUS_PROM) for pull-based scraping.
 *
 * Progress entries carry chips/sec throughput and an EWMA-based ETA
 * derived from successive snapshots; the EWMA state lives here, not
 * in the trackers, so the fan-out hot path stays one relaxed atomic
 * increment and the bit-identical accumulation contract is untouched.
 *
 * The sampler registers a closure with ExitFlush when started, so a
 * run that dies mid-experiment still publishes one final snapshot
 * (`"final": true`) — exactly the progress picture you need to
 * resume or debug the aborted campaign.
 *
 * Overhead budget (DESIGN.md Sec 5f): enabling the sampler costs
 * <= 2% wall clock on bench_parallel_scaling's single-thread
 * pipeline; the bench asserts the budget the same way span tracing
 * asserts its 3%.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace eval {

/** Process resource usage at one sampling instant. */
struct ResourceSample
{
    long rssKb = 0;        ///< current resident set (Linux /proc)
    long peakRssKb = 0;    ///< getrusage ru_maxrss
    double cpuUserS = 0.0; ///< getrusage user time
    double cpuSysS = 0.0;  ///< getrusage system time
    long threads = 0;      ///< live threads (Linux /proc; 0 unknown)
};

/** Current process resources (best effort; zeros where the platform
 *  offers no cheap answer). */
ResourceSample sampleProcessResources();

/** One tracker's progress view inside a snapshot. */
struct ProgressSample
{
    std::string name;
    std::uint64_t total = 0;
    std::uint64_t done = 0;
    double fraction = 0.0;
    double ratePerS = 0.0; ///< EWMA units/sec across snapshots
    double etaS = -1.0;    ///< seconds to completion; -1 unknown
    double elapsedS = 0.0; ///< since the tracker's first activity
};

/** One published status snapshot (schema_version pins the shape; the
 *  golden test tests/golden/status_schema_test.cpp guards it). */
struct StatusSnapshot
{
    std::uint64_t seq = 0;   ///< 1-based publication counter
    bool final = false;      ///< last snapshot of the run
    std::string tool;        ///< bench/CLI name
    long pid = 0;
    double uptimeS = 0.0;    ///< since the sampler was configured
    std::uint64_t intervalMs = 0;
    ResourceSample resources;
    std::vector<ProgressSample> progress;      ///< name order
    /** Flat numeric stat view (StatRegistry::flat()). */
    std::vector<std::pair<std::string, double>> stats;
};

/** Sampler wiring; see the env/flag table in bench_common.hh. */
struct SamplerConfig
{
    std::string tool = "unknown";
    std::string statusPath;        ///< empty: no JSON file sink
    std::string promPath;          ///< empty: no Prometheus sink
    std::uint64_t intervalMs = 500;
    std::size_t historyCap = 240;  ///< bounded in-memory series
};

/**
 * The background metrics sampler.  Most code uses the process
 * singleton (global()); tests may build private instances.  start()
 * and stop() are idempotent and must be called from one controlling
 * thread (the bench/CLI driver); everything else is thread-safe.
 */
class MetricsSampler
{
  public:
    MetricsSampler() = default;
    MetricsSampler(const MetricsSampler &) = delete;
    MetricsSampler &operator=(const MetricsSampler &) = delete;
    ~MetricsSampler();

    static MetricsSampler &global();

    /** Set the wiring for subsequent start().  Re-configuring resets
     *  seq, uptime origin, history, and EWMA state. */
    void configure(const SamplerConfig &config);
    SamplerConfig config() const;

    /** Spawn the sampling thread (publishes one snapshot
     *  immediately, then one per interval).  No-op when running. */
    void start();

    /** Join the thread and publish the final snapshot.  No-op when
     *  not running. */
    void stop();

    bool running() const;

    /** Take one snapshot now (advances seq and the EWMA state) and
     *  append it to the history — the sampler thread's step, exposed
     *  for tests and for single-shot publication. */
    StatusSnapshot sampleNow(bool final = false);

    /** Write @p snap to the configured sinks (tmp + rename).  True
     *  when every configured sink was written. */
    bool publish(const StatusSnapshot &snap);

    /** Snapshots taken so far, oldest first (bounded by
     *  historyCap). */
    std::vector<StatusSnapshot> history() const;

    /** Snapshots successfully published to the status file. */
    std::uint64_t published() const;

    /** Deterministic JSON serialization of one snapshot (the status
     *  file body). */
    static std::string statusJson(const StatusSnapshot &snap);

    /** The same data as Prometheus text exposition. */
    static std::string prometheusText(const StatusSnapshot &snap);

  private:
    void runLoop();
    /** Snapshot + publish the final state (crash path: called from
     *  the ExitFlush hook without joining the thread). */
    void flushFinal();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    SamplerConfig config_;
    std::thread thread_;
    bool running_ = false;
    bool stopRequested_ = false;
    bool finalPublished_ = false;
    int exitFlushId_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t published_ = 0;
    std::uint64_t originNs_ = 0;       ///< uptime origin
    std::deque<StatusSnapshot> history_;

    /** Per-tracker EWMA rate state (sampler-side only). */
    struct RateState
    {
        std::uint64_t lastDone = 0;
        std::uint64_t lastNs = 0;
        double rate = 0.0;
    };
    std::map<std::string, RateState> rates_;
};

} // namespace eval
