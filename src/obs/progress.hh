/**
 * @file
 * Lock-free progress accounting for long-running fan-outs.
 *
 * Every per-chip Monte Carlo fan-out (bench sweep drivers,
 * ChipFactory::manufacture, the optimizer's per-subsystem scans)
 * advertises its planned work with addTotal() and ticks one unit per
 * completed task.  The MetricsSampler (metrics_sampler.hh) reads the
 * counters at its sampling interval and derives completion fraction,
 * chips/sec throughput, and an EWMA-based ETA for the status file
 * that `eval_top` tails.
 *
 * Contract with the determinism layer (DESIGN.md Sec 5c): trackers
 * are observational only.  tick() is one relaxed atomic RMW on a
 * counter that no model code ever reads back, so progress accounting
 * can never leak into the bit-identical accumulation path — results
 * are byte-for-byte the same with tracking compiled in, sampled, or
 * ignored.  The eval-lint rule obs-progress-units holds bench/
 * parallel loops to this wiring.
 */

#pragma once

// eval-lint: counters-only progress counters are observational relaxed
// monotone ticks that no model code reads back (DESIGN.md Sec 5c).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace eval {

/**
 * Counters for one named unit of work ("chips", "manufacture", ...).
 * All methods are safe from any thread; tick() and addTotal() are
 * single relaxed atomic RMWs so hot loop bodies can call them
 * unconditionally.
 */
class ProgressTracker
{
  public:
    /** Declare @p n more planned units (cumulative across phases: a
     *  bench that sweeps four cells of 40 chips declares 160). */
    void
    addTotal(std::uint64_t n)
    {
        stampStart();
        total_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Record @p n completed units. */
    void
    tick(std::uint64_t n = 1)
    {
        stampStart();
        done_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Signed correction to the planned total (registry-level
     *  declareTotal() dedupe; two's-complement fetch_add handles the
     *  negative direction on the unsigned counter). */
    void
    adjustTotal(std::int64_t delta)
    {
        stampStart();
        total_.fetch_add(static_cast<std::uint64_t>(delta),
                         std::memory_order_relaxed);
    }

    std::uint64_t
    total() const
    {
        return total_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    done() const
    {
        return done_.load(std::memory_order_relaxed);
    }

    /** done/total clamped to [0, 1]; 0 while no total is declared
     *  (indeterminate work still counts units and rates). */
    double fraction() const;

    /** Monotonic nanosecond stamp of the first addTotal()/tick(); 0
     *  until the tracker sees any activity. */
    std::uint64_t
    startNs() const
    {
        return startNs_.load(std::memory_order_relaxed);
    }

    /** Seconds since the first activity (0 while idle). */
    double elapsedS() const;

    void reset();

  private:
    /** First-activity stamp: one relaxed load on the hot path; the
     *  CAS runs once per tracker lifetime. */
    void stampStart();

    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> done_{0};
    std::atomic<std::uint64_t> startNs_{0};
};

/**
 * Process-wide name -> tracker table.  Registration is find-or-create
 * and idempotent; trackers are never deallocated while the registry
 * lives, so fan-out code caches references (typically function-local
 * statics), mirroring the StatRegistry convention.
 */
class ProgressRegistry
{
  public:
    ProgressRegistry() = default;
    ProgressRegistry(const ProgressRegistry &) = delete;
    ProgressRegistry &operator=(const ProgressRegistry &) = delete;

    static ProgressRegistry &global();

    /** Find-or-create the tracker named @p name. */
    ProgressTracker &tracker(const std::string &name);

    /**
     * Idempotent total declaration, deduped by (tracker name, run
     * id).  addTotal() is cumulative, which is right for phases of
     * one run but double-counts when the *same* unit of work is
     * re-declared — e.g. a shard worker that resumes from a
     * checkpoint in the same process re-registers its chip range and
     * the status JSON would report 2x the population.  declareTotal()
     * remembers the last declaration per (name, runId) and applies
     * only the signed delta, so re-declaring is a no-op and revising
     * a declaration adjusts rather than accumulates.  Returns the
     * tracker for chaining ticks.
     */
    ProgressTracker &declareTotal(const std::string &name,
                                  const std::string &runId,
                                  std::uint64_t total);

    /** Whether (name, runId) has declared work before.  A resumed
     *  shard uses this to tell a fresh process (tick the checkpointed
     *  prefix as done) from an in-process re-run (the prefix was
     *  already ticked live). */
    bool hasDeclared(const std::string &name,
                     const std::string &runId) const;

    /** Lookup without creating; nullptr when absent. */
    const ProgressTracker *find(const std::string &name) const;

    /** Name/tracker views in name order (samplers, dashboards). */
    std::vector<std::pair<std::string, const ProgressTracker *>>
    all() const;

    std::size_t size() const;

    /** Zero every tracker, keeping registrations (and cached
     *  references) valid. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<ProgressTracker>> trackers_;
    /** (tracker name, run id) -> last declared total. */
    std::map<std::pair<std::string, std::string>, std::uint64_t>
        declaredTotals_;
};

} // namespace eval
