#include "exec/subprocess.hh"

#include <cerrno>
#include <cstdlib>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/logging.hh"

namespace eval {

Subprocess
Subprocess::spawn(const std::vector<std::string> &argv)
{
    EVAL_ASSERT(!argv.empty(), "subprocess needs an argv[0]");
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        EVAL_FATAL("fork failed (errno ", errno, ")");
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // exec only returns on failure; 127 is the shell convention
        // for "command not runnable".
        ::_exit(127);
    }
    Subprocess child;
    child.pid_ = static_cast<int>(pid);
    return child;
}

std::string
Subprocess::selfExePath()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        EVAL_FATAL("cannot resolve /proc/self/exe (errno ", errno, ")");
    return std::string(buf, static_cast<std::size_t>(n));
}

SubprocessResult
Subprocess::wait()
{
    if (reaped_)
        return result_;
    EVAL_ASSERT(pid_ > 0, "wait() on a subprocess that never spawned");
    int status = 0;
    pid_t rc;
    do {
        rc = ::waitpid(pid_, &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        EVAL_FATAL("waitpid(", pid_, ") failed (errno ", errno, ")");
    reaped_ = true;
    if (WIFSIGNALED(status)) {
        result_.signaled = true;
        result_.termSignal = WTERMSIG(status);
    } else {
        result_.signaled = false;
        result_.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    return result_;
}

} // namespace eval
