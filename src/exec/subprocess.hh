/**
 * @file
 * Minimal fork/exec subprocess harness — the worker protocol of the
 * sharded Monte Carlo driver (DESIGN.md Sec 5h).
 *
 * The shard supervisor launches one worker process per shard by
 * re-executing the current binary with a `--shard i/N` argument
 * vector, then reaps them with wait().  Keeping the wrapper minimal
 * and POSIX-only is deliberate: a worker is a full process so a
 * SIGKILL (OOM, preemption, the checkpoint-resume smoke test) can
 * never corrupt sibling shards, and the exit status carries the
 * worker verdict (exit code, or the terminating signal).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eval {

/** How one child process ended. */
struct SubprocessResult
{
    bool signaled = false; ///< killed by a signal (exitCode invalid)
    int exitCode = -1;     ///< exit status when !signaled
    int termSignal = 0;    ///< terminating signal when signaled

    bool ok() const { return !signaled && exitCode == 0; }
};

/** One spawned child process. */
class Subprocess
{
  public:
    Subprocess() = default;

    /**
     * fork + execv @p argv (argv[0] is the executable path).  Fatal
     * when fork fails; exec failure surfaces as exit code 127.
     */
    static Subprocess spawn(const std::vector<std::string> &argv);

    /** Absolute path of the running executable (/proc/self/exe), for
     *  self-re-exec worker protocols. */
    static std::string selfExePath();

    bool running() const { return pid_ > 0; }
    int pid() const { return pid_; }

    /** Block until the child exits; idempotent (second call returns
     *  the cached result). */
    SubprocessResult wait();

  private:
    int pid_ = -1;
    bool reaped_ = false;
    SubprocessResult result_;
};

} // namespace eval
