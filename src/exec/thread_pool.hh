/**
 * @file
 * Fixed-size work-stealing thread pool for the simulator's
 * embarrassingly parallel loops (per-chip Monte Carlo fan-out,
 * per-subsystem knob scans, FFT rows/columns).
 *
 * Design:
 *  - A pool of `threads` execution contexts: `threads - 1` persistent
 *    worker threads plus the caller, which always participates in the
 *    region it submitted.  `ThreadPool(1)` spawns no threads at all
 *    and parallelFor degenerates to a plain serial loop.
 *  - parallelFor(first, last, grain, fn) splits [first, last) into
 *    per-context spans; a context drains its own span from the front
 *    and, when empty, steals grain-sized chunks from the tail of the
 *    fullest victim span.  Every index is executed exactly once, so
 *    results are independent of the schedule; determinism is then the
 *    responsibility of the loop body (write to your own slot, derive
 *    RNG streams from the index — see Rng::split).
 *  - The first exception thrown by any body is captured, the region is
 *    cancelled (remaining chunks are dropped), and the exception is
 *    rethrown on the submitting thread.
 *  - Nested parallelism is safe: a parallelFor issued from inside a
 *    worker of the same pool runs inline and serially, so inner loops
 *    can be parallelized unconditionally without deadlock.
 *
 * The process-wide pool (globalPool) is sized once from --threads /
 * EVAL_THREADS (see setGlobalThreads); the library default is 1 so
 * that unit tests and library consumers stay serial unless they ask.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eval {

class ThreadPool
{
  public:
    /** @param threads total execution contexts (min 1; the submitting
     *  thread is one of them, so `threads - 1` workers are spawned). */
    explicit ThreadPool(std::size_t threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Execution contexts (worker threads + the caller). */
    std::size_t size() const { return threads_; }

    /**
     * Apply @p fn to every index in [first, last).  @p grainSize is
     * the scheduling granularity: contexts claim chunks of up to
     * `grainSize` consecutive indices (min 1).  Blocks until every
     * index ran; rethrows the first exception any body threw.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t first, std::size_t last,
                std::size_t grainSize, Fn &&fn)
    {
        if (first >= last)
            return;
        if (threads_ == 1 || insideThisPool() ||
            last - first <= std::max<std::size_t>(grainSize, 1)) {
            for (std::size_t i = first; i < last; ++i)
                fn(i);
            return;
        }
        const std::function<void(std::size_t, std::size_t)> body =
            [&fn](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i)
                    fn(i);
            };
        runRegion(first, last, std::max<std::size_t>(grainSize, 1),
                  body);
    }

    /**
     * Map @p fn over indices [0, n); returns the results in index
     * order.  The result type must be default-constructible.
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        std::vector<decltype(fn(std::size_t{}))> out(n);
        parallelFor(0, n, 1,
                    [&out, &fn](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Map @p fn over a vector of items; results in item order. */
    template <typename T, typename Fn>
    auto
    parallelMap(const std::vector<T> &items, Fn &&fn)
        -> std::vector<decltype(fn(items.front()))>
    {
        return parallelMap(items.size(), [&items, &fn](std::size_t i) {
            return fn(items[i]);
        });
    }

    /** Whether the calling thread is a worker of this pool. */
    bool insideThisPool() const;

  private:
    /** One context's share of the iteration space.  `begin`/`end`
     *  move toward each other: the owner pops from the front, thieves
     *  take from the back.  Guarded by `m` (claims are O(1), so the
     *  lock is uncontended except on the final chunks). */
    struct Span
    {
        std::mutex m;
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    /** The parallel region currently executing (one at a time). */
    struct Region
    {
        const std::function<void(std::size_t, std::size_t)> *body =
            nullptr;
        // Heap array, not vector: Span holds a mutex and cannot move.
        std::unique_ptr<Span[]> spans;
        std::size_t numSpans = 0;
        std::size_t grain = 1;
        bool cancelled = false;          ///< under exceptionMutex
        std::exception_ptr exception;    ///< under exceptionMutex
        std::mutex exceptionMutex;
    };

    void runRegion(std::size_t first, std::size_t last,
                   std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>
                       &body);
    /** Drain the region as context @p self (own span, then steal). */
    void participate(Region &region, std::size_t self);
    bool claimOwn(Region &region, std::size_t self, std::size_t &b,
                  std::size_t &e);
    bool claimSteal(Region &region, std::size_t self, std::size_t &b,
                    std::size_t &e);
    void workerLoop(std::size_t index);

    std::size_t threads_;
    std::vector<std::thread> workers_;

    /** Serializes top-level submissions from distinct threads. */
    std::mutex submitMutex_;

    std::mutex mutex_;                   ///< guards the fields below
    std::condition_variable wake_;       ///< workers: new region / stop
    std::condition_variable done_;       ///< submitter: workers drained
    Region *region_ = nullptr;
    std::uint64_t regionSeq_ = 0;
    std::size_t activeWorkers_ = 0;
    bool stop_ = false;
};

/**
 * The process-wide pool.  Sized by the last setGlobalThreads() call;
 * defaults to 1 (serial) until configured.  The pool is created
 * lazily on first use.
 */
ThreadPool &globalPool();

/**
 * Configure the process-wide pool size before parallel work starts:
 * @p threads execution contexts, or 0 to auto-detect from
 * EVAL_THREADS (falling back to std::thread::hardware_concurrency).
 * Recreates the pool; do not call concurrently with globalPool use.
 */
void setGlobalThreads(std::size_t threads);

/** Execution contexts the global pool is (or would be) sized to. */
std::size_t globalThreads();

/** EVAL_THREADS when set and positive, else hardware concurrency. */
std::size_t defaultThreads();

} // namespace eval

