#include "exec/thread_pool.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>

#include "trace/span_tracer.hh"

namespace eval {

namespace {

/** Pool whose region the current thread is executing (nested
 *  parallelFor detection).  Set for workers and for the submitting
 *  thread while it participates. */
thread_local const ThreadPool *currentPool = nullptr;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(std::max<std::size_t>(threads, 1))
{
    workers_.reserve(threads_ - 1);
    for (std::size_t i = 0; i + 1 < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

bool
ThreadPool::insideThisPool() const
{
    return currentPool == this;
}

bool
ThreadPool::claimOwn(Region &region, std::size_t self, std::size_t &b,
                     std::size_t &e)
{
    Span &span = region.spans[self];
    std::lock_guard<std::mutex> lock(span.m);
    if (span.begin >= span.end)
        return false;
    b = span.begin;
    e = std::min(span.begin + region.grain, span.end);
    span.begin = e;
    return true;
}

bool
ThreadPool::claimSteal(Region &region, std::size_t self, std::size_t &b,
                       std::size_t &e)
{
    // Steal from the fullest victim so spans drain evenly.
    const std::size_t n = region.numSpans;
    std::size_t victim = n;
    std::size_t victimLoad = 0;
    for (std::size_t v = 0; v < n; ++v) {
        if (v == self)
            continue;
        Span &s = region.spans[v];
        std::lock_guard<std::mutex> lock(s.m);
        const std::size_t load =
            s.end > s.begin ? s.end - s.begin : 0;
        if (load > victimLoad) {
            victimLoad = load;
            victim = v;
        }
    }
    if (victim == n)
        return false;
    Span &s = region.spans[victim];
    std::lock_guard<std::mutex> lock(s.m);
    if (s.begin >= s.end)
        return false;                    // drained since we looked
    const std::size_t take = std::min(region.grain, s.end - s.begin);
    e = s.end;
    b = s.end - take;
    s.end = b;
    return true;
}

void
ThreadPool::participate(Region &region, std::size_t self)
{
    const ThreadPool *prev = currentPool;
    currentPool = this;
    std::size_t b, e;
    while (claimOwn(region, self, b, e) ||
           claimSteal(region, self, b, e)) {
        {
            std::lock_guard<std::mutex> lock(region.exceptionMutex);
            if (region.cancelled)
                break;
        }
        try {
            // Task provenance on the timeline: which context ran
            // which index chunk (and whether it was stolen work).
            ScopedSpan span("pool.chunk");
            span.arg("context", self);
            span.arg("first", b);
            span.arg("last", e);
            (*region.body)(b, e);
        } catch (...) {
            std::lock_guard<std::mutex> lock(region.exceptionMutex);
            if (!region.exception)
                region.exception = std::current_exception();
            region.cancelled = true;
            break;
        }
    }
    currentPool = prev;
}

void
ThreadPool::runRegion(std::size_t first, std::size_t last,
                      std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>
                          &body)
{
    // One region at a time; a second top-level submitter waits here.
    std::lock_guard<std::mutex> submitLock(submitMutex_);

    ScopedSpan span("pool.region");
    span.arg("items", last - first);
    span.arg("grain", grain);
    span.arg("contexts", threads_);

    Region region;
    region.body = &body;
    region.grain = grain;
    region.spans = std::make_unique<Span[]>(threads_);
    region.numSpans = threads_;

    // Static partition into contiguous per-context spans; stealing
    // rebalances whatever the static split gets wrong.
    const std::size_t total = last - first;
    const std::size_t per = total / threads_;
    std::size_t rem = total % threads_;
    std::size_t cursor = first;
    for (std::size_t i = 0; i < threads_; ++i) {
        const std::size_t len = per + (i < rem ? 1 : 0);
        region.spans[i].begin = cursor;
        region.spans[i].end = cursor + len;
        cursor += len;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        region_ = &region;
        ++regionSeq_;
        activeWorkers_ = workers_.size();
    }
    wake_.notify_all();

    participate(region, 0);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return activeWorkers_ == 0; });
        region_ = nullptr;
    }

    if (region.exception)
        std::rethrow_exception(region.exception);
}

void
ThreadPool::workerLoop(std::size_t index)
{
    std::uint64_t seen = 0;
    for (;;) {
        Region *region = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stop_ || regionSeq_ > seen;
            });
            if (stop_)
                return;
            seen = regionSeq_;
            region = region_;
        }
        if (region)
            participate(*region, index);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeWorkers_;
        }
        done_.notify_all();
    }
}

namespace {

std::mutex globalPoolMutex;
std::unique_ptr<ThreadPool> globalPoolInstance;
std::size_t globalPoolThreads = 1;

} // namespace

std::size_t
defaultThreads()
{
    if (const char *env = std::getenv("EVAL_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (!globalPoolInstance) {
        globalPoolInstance =
            std::make_unique<ThreadPool>(globalPoolThreads);
    }
    return *globalPoolInstance;
}

void
setGlobalThreads(std::size_t threads)
{
    const std::size_t n = threads > 0 ? threads : defaultThreads();
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (globalPoolInstance && globalPoolInstance->size() == n)
        return;
    globalPoolInstance.reset();
    globalPoolThreads = n;
}

std::size_t
globalThreads()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    return globalPoolInstance ? globalPoolInstance->size()
                              : globalPoolThreads;
}

} // namespace eval
