/**
 * @file
 * Critical-path populations per pipeline subsystem (the VATS model's
 * dynamic path-delay distributions, Sec 2.2 / Figure 1).
 *
 * Each subsystem is represented by a population of timing paths.  A
 * path has a *structural* delay (what the design tools produced at the
 * no-variation corner, as a fraction of the nominal clock period), a
 * local Vt/Leff sampled from the chip's variation map at the path's
 * location, and a *sensitization probability*: the chance that one
 * access exercises the path at its full delay.
 *
 *  - Memory structures have homogeneous paths (wordline/bitline arrays)
 *    with high sensitization: a sharp error onset.
 *  - Logic has a wide structural spread and rare long sensitized paths:
 *    a gradual onset.
 *  - Mixed subsystems blend the two.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "util/random.hh"
#include "variation/chip.hh"
#include "variation/floorplan.hh"

namespace eval {

/** One timing path after variation has been applied. */
struct TimingPath
{
    /** Delay in seconds at the design-corner operating conditions,
     *  including this path's local systematic+random variation. */
    double delayRef;
    /** Probability that one access exercises the path fully. */
    double sensitization;
};

/** Knobs describing how a subsystem's structural paths are drawn. */
struct PathPopulationParams
{
    std::size_t numPaths = 320;
    /** Gates per path: random per-gate variation averages with 1/sqrt. */
    double gatesPerPath = 12.0;
    /**
     * Global structural margin multiplier; 1.0 means the slowest
     * structural path exactly meets the nominal period at the corner
     * (the "critical-path wall" produced by design tools).
     */
    double structuralScale = 1.0;
    /** Delay multiplier applied uniformly (Shift techniques). */
    double shiftFactor = 1.0;
    /** Low-slope FU re-optimization (Tilt): mean x0.75, variance x2. */
    bool lowSlope = false;
    /** Cells in a memory array; each access exercises ~one of them. */
    std::size_t memoryTotalCells = 65536;
    /** Upper quantile of the cell population that is importance-
     *  sampled into the path list (the rest becomes one bulk path). */
    double memoryTailFraction = 0.005;
    /**
     * Fraction of the very slowest cells repaired out by column/row
     * redundancy (standard practice in large caches; small arrays and
     * queues have no spares).  Repair trims the deep variation tail,
     * so big caches stop being the universal frequency limiter.
     */
    double memoryRepairedFraction = 0.0;
};

/**
 * SRAM-Razor margin of the L1 caches in EVAL environments (Sec 5): the
 * duplicate sense amplifiers sample a fraction of a cycle later, so
 * speculative L1 reads effectively enjoy a longer sampling window.
 * Expressed as a structural-delay scale (< 1).  A plain (Baseline)
 * processor has no Razor support and sees the unscaled cache timing.
 */
constexpr double kRazorL1Margin = 0.88;

/** Per-subsystem structural defaults: array geometry, redundancy, and
 *  the Razor assist of the L1 caches. */
PathPopulationParams defaultPathParams(SubsystemId id);

/** Result of building a population: paths plus subsystem means. */
struct PathPopulation
{
    std::vector<TimingPath> paths;
    double vt0Mean;    ///< subsystem mean Vt0 (volts, reference temp)
    double leffMean;   ///< subsystem mean Leff (normalized)
    StageType type;
};

/**
 * Build the path population of one subsystem on one chip.
 *
 * @param chip   manufactured die
 * @param core   core index
 * @param id     subsystem
 * @param params structural knobs (defaults model the plain design)
 * @param rng    stream for structural + random-variation draws
 */
PathPopulation buildPathPopulation(const Chip &chip, std::size_t core,
                                   SubsystemId id,
                                   const PathPopulationParams &params,
                                   Rng &rng);

} // namespace eval

