#include "timing/error_model.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/config.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

namespace {

std::uint64_t
nextCacheId()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Per-thread direct-mapped memo cache for errorRatePerAccess.
 *
 * Keys are the exact bit patterns of the query, so a hit returns
 * precisely the value a recomputation would — results are therefore
 * independent of hit/miss history and identical across any thread
 * count (each thread simply keeps its own working set).  4096 entries
 * cover one core's knob grid (~15 subsystems x ~200 knob points) with
 * room for several phases' thermal iterates.
 */
struct PeCacheEntry
{
    std::uint64_t id = 0;        ///< 0 = empty
    std::uint64_t periodBits = 0;
    std::uint64_t vddBits = 0;
    std::uint64_t vbbBits = 0;
    std::uint64_t tempBits = 0;
    double value = 0.0;
};

constexpr std::size_t kPeCacheSize = 4096;   // power of two

thread_local PeCacheEntry peCache[kPeCacheSize];

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** -1 = follow EVAL_PE_CACHE, otherwise the forced 0/1 setting. */
std::atomic<int> peCacheOverride{-1};

} // namespace

void
setPeCacheEnabled(bool enabled)
{
    peCacheOverride.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool
peCacheEnabled()
{
    const int forced = peCacheOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool enabled = envBool("EVAL_PE_CACHE", true);
    return enabled;
}

StageErrorModel::StageErrorModel(const ProcessParams &params,
                                 PathPopulation pop)
    : params_(params), type_(pop.type), vt0Mean_(pop.vt0Mean),
      leffMean_(pop.leffMean), cacheId_(nextCacheId())
{
    EVAL_ASSERT(!pop.paths.empty(), "error model needs paths");

    std::sort(pop.paths.begin(), pop.paths.end(),
              [](const TimingPath &a, const TimingPath &b) {
                  return a.delayRef < b.delayRef;
              });

    const std::size_t n = pop.paths.size();
    delays_.resize(n);
    survivalLog_.resize(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        delays_[i] = pop.paths[i].delayRef;
    for (std::size_t i = n; i-- > 0;) {
        const double s =
            clamp(pop.paths[i].sensitization, 0.0, 1.0 - 1e-12);
        survivalLog_[i] = survivalLog_[i + 1] + std::log1p(-s);
    }
}

double
StageErrorModel::delayScale(const OperatingConditions &op) const
{
    const OperatingConditions corner = OperatingConditions::nominal(params_);
    const double atOp = gateDelayFactor(params_, vt0Mean_, leffMean_, op);
    const double atCorner =
        gateDelayFactor(params_, vt0Mean_, leffMean_, corner);
    if (atOp >= kNonFunctionalDelayFactor)
        return kNonFunctionalDelayFactor;
    return atOp / atCorner;
}

double
StageErrorModel::errorRatePerAccess(double clockPeriod,
                                    const OperatingConditions &op) const
{
    EVAL_ASSERT(clockPeriod > 0.0, "clock period must be positive");
    static Counter &evals =
        StatRegistry::global().counter("timing.error_evals");
    static Counter &hits =
        StatRegistry::global().counter("timing.error_cache_hits");
    evals.inc();

    if (!peCacheEnabled())
        return computeErrorRatePerAccess(clockPeriod, op);

    const std::uint64_t periodBits = doubleBits(clockPeriod);
    const std::uint64_t vddBits = doubleBits(op.vdd);
    const std::uint64_t vbbBits = doubleBits(op.vbb);
    const std::uint64_t tempBits = doubleBits(op.tempC);
    // FNV-1a style mix over the key words.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w :
         {cacheId_, periodBits, vddBits, vbbBits, tempBits}) {
        h ^= w;
        h *= 0x100000001b3ULL;
    }
    PeCacheEntry &e = peCache[h & (kPeCacheSize - 1)];
    if (e.id == cacheId_ && e.periodBits == periodBits &&
        e.vddBits == vddBits && e.vbbBits == vbbBits &&
        e.tempBits == tempBits) {
        hits.inc();
        return e.value;
    }
    const double pe = computeErrorRatePerAccess(clockPeriod, op);
    e = {cacheId_, periodBits, vddBits, vbbBits, tempBits, pe};
    return pe;
}

double
StageErrorModel::computeErrorRatePerAccess(
    double clockPeriod, const OperatingConditions &op) const
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.timing.error_eval");
    ScopedTimer scope(timer);
    // Sampled 1-in-64: a full PE evaluation is only a binary search,
    // so an every-call span would dominate its own measurement (the
    // ≤3% overhead budget, DESIGN.md Sec 5e).
    static thread_local std::uint64_t spanTick = 0;
    ScopedSpan span("pe.eval", (spanTick++ & 63) == 0);
    static Counter &spanEvals =
        StatRegistry::global().counter("timing.error_evals");
    static Counter &spanHits =
        StatRegistry::global().counter("timing.error_cache_hits");
    span.arg("cache_evals", spanEvals.value());
    span.arg("cache_hits", spanHits.value());
    const double scale = delayScale(op);
    if (scale >= kNonFunctionalDelayFactor)
        return 1.0;
    const double threshold = clockPeriod / scale;

    // First path index whose reference delay exceeds the threshold.
    const auto it =
        std::upper_bound(delays_.begin(), delays_.end(), threshold);
    const auto idx = static_cast<std::size_t>(it - delays_.begin());
    return 1.0 - std::exp(survivalLog_[idx]);
}

double
StageErrorModel::maxDelay(const OperatingConditions &op) const
{
    return delays_.back() * delayScale(op);
}

double
StageErrorModel::fvar(const OperatingConditions &op) const
{
    const double d = maxDelay(op);
    return d > 0.0 ? 1.0 / d : 0.0;
}

double
StageErrorModel::maxFrequencyForErrorRate(double peBudget,
                                          const OperatingConditions &op) const
{
    EVAL_ASSERT(peBudget >= 0.0, "PE budget must be non-negative");
    const double scale = delayScale(op);
    if (scale >= kNonFunctionalDelayFactor)
        return 0.0;

    // Walk the sorted delays from the slowest down: allowing paths
    // [i, n) to fail yields PE = 1 - exp(survivalLog_[i]); find the
    // smallest allowed period.  The period may sit just above delay
    // d_{i-1} (exclusive of path i-1 failing).
    const std::size_t n = delays_.size();
    std::size_t lowest = n;  // first failing path index
    while (lowest > 0) {
        const double pe = 1.0 - std::exp(survivalLog_[lowest - 1]);
        if (pe > peBudget)
            break;
        --lowest;
    }
    // Paths [lowest, n) may fail within budget.  The clock period must
    // still cover path lowest-1 (and all faster ones).
    const double coveredDelay = lowest == 0 ? 0.0 : delays_[lowest - 1];
    if (coveredDelay <= 0.0) {
        // Entire population may fail within budget; frequency is
        // unbounded by this stage. Return a large sentinel.
        return 1.0e12;
    }
    // Tiny margin so the rounded period never re-includes the covered
    // path through floating-point noise.
    return 1.0 / (coveredDelay * scale * (1.0 + 1e-9));
}

double
processorErrorRate(const std::vector<double> &perAccessRates,
                   const std::vector<double> &rho)
{
    EVAL_ASSERT(perAccessRates.size() == rho.size(),
                "stage rate/activity size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < perAccessRates.size(); ++i)
        total += rho[i] * perAccessRates[i];
    return total;
}

} // namespace eval
