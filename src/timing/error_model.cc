#include "timing/error_model.hh"

#include <algorithm>
#include <cmath>

#include "stats/stat_registry.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

StageErrorModel::StageErrorModel(const ProcessParams &params,
                                 PathPopulation pop)
    : params_(params), type_(pop.type), vt0Mean_(pop.vt0Mean),
      leffMean_(pop.leffMean)
{
    EVAL_ASSERT(!pop.paths.empty(), "error model needs paths");

    std::sort(pop.paths.begin(), pop.paths.end(),
              [](const TimingPath &a, const TimingPath &b) {
                  return a.delayRef < b.delayRef;
              });

    const std::size_t n = pop.paths.size();
    delays_.resize(n);
    survivalLog_.resize(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        delays_[i] = pop.paths[i].delayRef;
    for (std::size_t i = n; i-- > 0;) {
        const double s =
            clamp(pop.paths[i].sensitization, 0.0, 1.0 - 1e-12);
        survivalLog_[i] = survivalLog_[i + 1] + std::log1p(-s);
    }
}

double
StageErrorModel::delayScale(const OperatingConditions &op) const
{
    const OperatingConditions corner = OperatingConditions::nominal(params_);
    const double atOp = gateDelayFactor(params_, vt0Mean_, leffMean_, op);
    const double atCorner =
        gateDelayFactor(params_, vt0Mean_, leffMean_, corner);
    if (atOp >= kNonFunctionalDelayFactor)
        return kNonFunctionalDelayFactor;
    return atOp / atCorner;
}

double
StageErrorModel::errorRatePerAccess(double clockPeriod,
                                    const OperatingConditions &op) const
{
    EVAL_ASSERT(clockPeriod > 0.0, "clock period must be positive");
    static Counter &evals =
        StatRegistry::global().counter("timing.error_evals");
    static TimerStat &timer =
        StatRegistry::global().timer("profile.timing.error_eval");
    ScopedTimer scope(timer);
    evals.inc();
    const double scale = delayScale(op);
    if (scale >= kNonFunctionalDelayFactor)
        return 1.0;
    const double threshold = clockPeriod / scale;

    // First path index whose reference delay exceeds the threshold.
    const auto it =
        std::upper_bound(delays_.begin(), delays_.end(), threshold);
    const auto idx = static_cast<std::size_t>(it - delays_.begin());
    return 1.0 - std::exp(survivalLog_[idx]);
}

double
StageErrorModel::maxDelay(const OperatingConditions &op) const
{
    return delays_.back() * delayScale(op);
}

double
StageErrorModel::fvar(const OperatingConditions &op) const
{
    const double d = maxDelay(op);
    return d > 0.0 ? 1.0 / d : 0.0;
}

double
StageErrorModel::maxFrequencyForErrorRate(double peBudget,
                                          const OperatingConditions &op) const
{
    EVAL_ASSERT(peBudget >= 0.0, "PE budget must be non-negative");
    const double scale = delayScale(op);
    if (scale >= kNonFunctionalDelayFactor)
        return 0.0;

    // Walk the sorted delays from the slowest down: allowing paths
    // [i, n) to fail yields PE = 1 - exp(survivalLog_[i]); find the
    // smallest allowed period.  The period may sit just above delay
    // d_{i-1} (exclusive of path i-1 failing).
    const std::size_t n = delays_.size();
    std::size_t lowest = n;  // first failing path index
    while (lowest > 0) {
        const double pe = 1.0 - std::exp(survivalLog_[lowest - 1]);
        if (pe > peBudget)
            break;
        --lowest;
    }
    // Paths [lowest, n) may fail within budget.  The clock period must
    // still cover path lowest-1 (and all faster ones).
    const double coveredDelay = lowest == 0 ? 0.0 : delays_[lowest - 1];
    if (coveredDelay <= 0.0) {
        // Entire population may fail within budget; frequency is
        // unbounded by this stage. Return a large sentinel.
        return 1.0e12;
    }
    // Tiny margin so the rounded period never re-includes the covered
    // path through floating-point noise.
    return 1.0 / (coveredDelay * scale * (1.0 + 1e-9));
}

double
processorErrorRate(const std::vector<double> &perAccessRates,
                   const std::vector<double> &rho)
{
    EVAL_ASSERT(perAccessRates.size() == rho.size(),
                "stage rate/activity size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < perAccessRates.size(); ++i)
        total += rho[i] * perAccessRates[i];
    return total;
}

} // namespace eval
