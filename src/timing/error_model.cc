#include "timing/error_model.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/config.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

namespace {

std::uint64_t
nextCacheId()
{
    static std::atomic<std::uint64_t> counter{1};
    // eval-lint: allow(atomics-relaxed) monotone id source; callers need
    // uniqueness, not ordering, and never read another thread's id.
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Per-thread direct-mapped memo cache for errorRatePerAccess.
 *
 * Keys are the exact bit patterns of the query, so a hit returns
 * precisely the value a recomputation would — results are therefore
 * independent of hit/miss history and identical across any thread
 * count (each thread simply keeps its own working set).  4096 entries
 * cover one core's knob grid (~15 subsystems x ~200 knob points) with
 * room for several phases' thermal iterates.
 */
struct PeCacheEntry
{
    std::uint64_t id = 0;        ///< 0 = empty
    std::uint64_t periodBits = 0;
    std::uint64_t vddBits = 0;
    std::uint64_t vbbBits = 0;
    std::uint64_t tempBits = 0;
    double value = 0.0;
};

constexpr std::size_t kPeCacheSize = 4096;   // power of two

thread_local PeCacheEntry peCache[kPeCacheSize];

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** -1 = follow EVAL_PE_CACHE, otherwise the forced 0/1 setting. */
std::atomic<int> peCacheOverride{-1};

/** -1 = follow EVAL_PE_TABLE, otherwise the forced 0/1 setting. */
std::atomic<int> peTableOverride{-1};

/**
 * The eval/hit counters, registered once and shared by the cached
 * entry point and the uncached compute path (previously both
 * re-registered the same names with their own static locals).
 */
struct PeCounters
{
    Counter &evals;
    Counter &hits;

    static const PeCounters &
    get()
    {
        static const PeCounters counters{
            StatRegistry::global().counter("timing.error_evals"),
            StatRegistry::global().counter("timing.error_cache_hits")};
        return counters;
    }
};

} // namespace

void
setPeCacheEnabled(bool enabled)
{
    // eval-lint: allow(atomics-relaxed) independent on/off override; readers
    // only ever see 0/1/-1 and no other memory is published with it.
    peCacheOverride.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool
peCacheEnabled()
{
    // eval-lint: allow(atomics-relaxed) single flag with no associated payload.
    const int forced = peCacheOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool enabled = envBool("EVAL_PE_CACHE", true);
    return enabled;
}

void
setPeTableEnabled(bool enabled)
{
    // eval-lint: allow(atomics-relaxed) independent on/off override; readers
    // only ever see 0/1/-1 and no other memory is published with it.
    peTableOverride.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool
peTableEnabled()
{
    // eval-lint: allow(atomics-relaxed) single flag with no associated payload.
    const int forced = peTableOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool enabled = envBool("EVAL_PE_TABLE", false);
    return enabled;
}

namespace {

/** Sorted reference delays of a population (surface input). */
std::vector<double>
sortedDelays(PathPopulation &pop)
{
    EVAL_ASSERT(!pop.paths.empty(), "error model needs paths");
    std::sort(pop.paths.begin(), pop.paths.end(),
              [](const TimingPath &a, const TimingPath &b) {
                  return a.delayRef < b.delayRef;
              });
    std::vector<double> delays(pop.paths.size());
    for (std::size_t i = 0; i < delays.size(); ++i)
        delays[i] = pop.paths[i].delayRef;
    return delays;
}

/** survivalLog[i] = log P(no path in [i, n) fails), size n+1. */
std::vector<double>
survivalLogOf(const PathPopulation &pop)
{
    const std::size_t n = pop.paths.size();
    std::vector<double> survivalLog(n + 1, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        const double s =
            clamp(pop.paths[i].sensitization, 0.0, 1.0 - 1e-12);
        survivalLog[i] = survivalLog[i + 1] + std::log1p(-s);
    }
    return survivalLog;
}

/** Builds the surface from a population (sorts it in place first). */
PeSurface
makeSurface(const ProcessParams &params, PathPopulation &pop)
{
    std::vector<double> delays = sortedDelays(pop);
    return PeSurface(params, pop.vt0Mean, pop.leffMean, std::move(delays),
                     survivalLogOf(pop));
}

} // namespace

StageErrorModel::StageErrorModel(const ProcessParams &params,
                                 PathPopulation pop)
    : params_(params), type_(pop.type), vt0Mean_(pop.vt0Mean),
      leffMean_(pop.leffMean), cacheId_(nextCacheId()),
      surface_(makeSurface(params, pop))
{
}

double
StageErrorModel::delayScale(const OperatingConditions &op) const
{
    return surface_.scaleExact(op);
}

double
StageErrorModel::errorRatePerAccess(double clockPeriod,
                                    const OperatingConditions &op) const
{
    EVAL_ASSERT(clockPeriod > 0.0, "clock period must be positive");
    const PeCounters &counters = PeCounters::get();
    counters.evals.inc();

    if (!peCacheEnabled())
        return computeErrorRatePerAccess(clockPeriod, op);

    const std::uint64_t periodBits = doubleBits(clockPeriod);
    const std::uint64_t vddBits = doubleBits(op.vdd);
    const std::uint64_t vbbBits = doubleBits(op.vbb);
    const std::uint64_t tempBits = doubleBits(op.tempC);
    // FNV-1a style mix over the key words, then a murmur-style
    // avalanche.  The avalanche is essential: without it the slot
    // index is a function of the key words' low mantissa bits only,
    // and "round" query values (grid Vdd steps, integral
    // temperatures) all share zero low bits — knob-grid sweeps used
    // to collapse onto a few dozen slots and thrash.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w :
         {cacheId_, periodBits, vddBits, vbbBits, tempBits}) {
        h ^= w;
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    PeCacheEntry &e = peCache[h & (kPeCacheSize - 1)];
    if (e.id == cacheId_ && e.periodBits == periodBits &&
        e.vddBits == vddBits && e.vbbBits == vbbBits &&
        e.tempBits == tempBits) {
        counters.hits.inc();
        return e.value;
    }
    const double pe = computeErrorRatePerAccess(clockPeriod, op);
    e = {cacheId_, periodBits, vddBits, vbbBits, tempBits, pe};
    return pe;
}

double
StageErrorModel::computeErrorRatePerAccess(
    double clockPeriod, const OperatingConditions &op) const
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.timing.error_eval");
    ScopedTimer scope(timer);
    // Sampled 1-in-64: a full PE evaluation is only an indexed lookup,
    // so an every-call span would dominate its own measurement (the
    // ≤3% overhead budget, DESIGN.md Sec 5e).
    static thread_local std::uint64_t spanTick = 0;
    ScopedSpan span("pe.eval", (spanTick++ & 63) == 0);
    const PeCounters &counters = PeCounters::get();
    span.arg("cache_evals", counters.evals.value());
    span.arg("cache_hits", counters.hits.value());
    const double scale = peTableEnabled() ? surface_.scaleFast(op)
                                          : surface_.scaleExact(op);
    if (scale >= kNonFunctionalDelayFactor)
        return 1.0;
    const double threshold = clockPeriod / scale;
    return surface_.level(surface_.upperBoundIndex(threshold));
}

double
StageErrorModel::maxDelay(const OperatingConditions &op) const
{
    return surface_.delays().back() * delayScale(op);
}

double
StageErrorModel::fvar(const OperatingConditions &op) const
{
    const double d = maxDelay(op);
    return d > 0.0 ? 1.0 / d : 0.0;
}

double
StageErrorModel::maxFrequencyForErrorRate(double peBudget,
                                          const OperatingConditions &op) const
{
    EVAL_ASSERT(peBudget >= 0.0, "PE budget must be non-negative");
    const double scale = delayScale(op);
    if (scale >= kNonFunctionalDelayFactor)
        return 0.0;

    // First failing path index within budget: paths [lowest, n) may
    // fail and PE stays <= peBudget.  The legacy code walked the
    // sorted delays from the slowest down with an exp per step; the
    // surface's precomputed monotone PE levels turn that into a
    // partition point (identical result, including the tie rule).
    const std::size_t lowest = surface_.firstIndexWithinBudget(peBudget);
    // The clock period must still cover path lowest-1 (and all faster
    // ones).
    const std::vector<double> &delays = surface_.delays();
    const double coveredDelay = lowest == 0 ? 0.0 : delays[lowest - 1];
    if (coveredDelay <= 0.0) {
        // Entire population may fail within budget; frequency is
        // unbounded by this stage. Return a large sentinel.
        return 1.0e12;
    }
    // Tiny margin so the rounded period never re-includes the covered
    // path through floating-point noise.
    return 1.0 / (coveredDelay * scale * (1.0 + 1e-9));
}

double
processorErrorRate(const std::vector<double> &perAccessRates,
                   const std::vector<double> &rho)
{
    EVAL_ASSERT(perAccessRates.size() == rho.size(),
                "stage rate/activity size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < perAccessRates.size(); ++i)
        total += rho[i] * perAccessRates[i];
    return total;
}

} // namespace eval
