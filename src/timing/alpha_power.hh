/**
 * @file
 * Forwarding header: the alpha-power delay model moved into the
 * kernel layer (src/kernels/) so both the timing and thermal libraries
 * can share it without a dependency cycle.  Existing includes keep
 * working through this alias.
 */

#pragma once

#include "kernels/alpha_power.hh"
