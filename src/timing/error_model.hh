/**
 * @file
 * Per-subsystem timing-error model: PE(f) curves derived from a path
 * population (VATS, Sec 2.2), and the series-failure pipeline
 * composition of Eq 4.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/pe_surface.hh"
#include "timing/alpha_power.hh"
#include "timing/path_population.hh"
#include "variation/process_params.hh"

namespace eval {

/**
 * Error-rate model for one subsystem on one chip.
 *
 * The population's reference delays are fixed at construction; the
 * voltage/bias/temperature dependence enters through a common delay
 * scale evaluated with the subsystem's mean Vt0/Leff (paths within a
 * subsystem are spatially close, so their systematic variation moves
 * together; per-path differences are already baked into the reference
 * delays).  Construction compiles the population into a PeSurface
 * (kernels/pe_surface.hh): precomputed PE levels, a bucketed delay
 * index, and hoisted corner constants make PE queries O(1)-ish and
 * budget queries O(log paths).
 */
class StageErrorModel
{
  public:
    StageErrorModel(const ProcessParams &params, PathPopulation pop);

    /** Delay multiplier vs the design corner at conditions @p op. */
    double delayScale(const OperatingConditions &op) const;

    /**
     * Probability that one access to this subsystem suffers a timing
     * error when clocked with @p clockPeriod seconds at @p op.
     *
     * Queries are memoized in a per-thread cache keyed on this model
     * plus the exact (period, Vdd, Vbb, T) tuple: the exhaustive knob
     * scans re-evaluate identical points across phases and retune
     * cycles, and knob values come from a discrete grid, so exact-bit
     * keys hit without perturbing any result (a hit returns the very
     * value a recomputation would).  Set EVAL_PE_CACHE=0 (or call
     * setPeCacheEnabled(false)) to disable.
     *
     * In table mode (EVAL_PE_TABLE / setPeTableEnabled) the delay
     * scale comes from bounded-error pow tables instead of exact
     * std::pow; the result equals an exact evaluation at a period
     * perturbed by at most PeSurface::kScaleRelErrorBound (relative).
     * Exact mode — the default, and the mode all goldens are recorded
     * in — never touches the tables.
     */
    double errorRatePerAccess(double clockPeriod,
                              const OperatingConditions &op) const;

    /** Slowest path delay in seconds at @p op.  Always exact. */
    double maxDelay(const OperatingConditions &op) const;

    /** Error-free frequency at @p op (1 / maxDelay).  Always exact. */
    double fvar(const OperatingConditions &op) const;

    /**
     * Highest frequency whose per-access error rate does not exceed
     * @p peBudget at @p op (the per-stage step of the Freq algorithm).
     * Always exact: rated frequencies feed the golden record in both
     * modes.
     */
    double maxFrequencyForErrorRate(double peBudget,
                                    const OperatingConditions &op) const;

    StageType type() const { return type_; }
    double vt0Mean() const { return vt0Mean_; }
    double leffMean() const { return leffMean_; }
    std::size_t numPaths() const { return surface_.numPaths(); }

    /** The compiled PE surface (kernel-layer tests compare against
     *  legacy expressions through this). */
    const PeSurface &surface() const { return surface_; }

  private:
    /** Uncached evaluation backing errorRatePerAccess. */
    double computeErrorRatePerAccess(double clockPeriod,
                                     const OperatingConditions &op) const;

    const ProcessParams params_;
    StageType type_;
    double vt0Mean_;
    double leffMean_;
    /** Distinct per construction; copies share it (identical content
     *  yields identical query results, so sharing is safe).  Memo
     *  cache keys include this id so two chips' models never alias. */
    std::uint64_t cacheId_;
    /** Compiled levels/index/constants (owns the sorted delays). */
    PeSurface surface_;
};

/**
 * Eq 4: processor error rate per instruction for an n-stage pipeline,
 * given each stage's per-access error rate and its activity factor
 * rho_i (accesses per instruction).
 */
double processorErrorRate(const std::vector<double> &perAccessRates,
                          const std::vector<double> &rho);

/**
 * Runtime override of the PE memo cache (default: EVAL_PE_CACHE env,
 * on when unset).  Used by the differential-testing driver to prove
 * the cache-on/cache-off bit-identity contract within one process.
 * Cached entries are keyed per model instance, so re-enabling after a
 * disabled run cannot serve stale values.
 */
void setPeCacheEnabled(bool enabled);

/** Whether errorRatePerAccess currently memoizes. */
bool peCacheEnabled();

/**
 * Runtime override of PE-table mode (default: EVAL_PE_TABLE env, OFF
 * when unset — the library and the golden record default to exact).
 * Benches turn it on unless the environment pins it (bench_common).
 * Table-mode PE values stay within PeSurface::kScaleRelErrorBound
 * (as a relative period perturbation) of exact mode.
 */
void setPeTableEnabled(bool enabled);

/** Whether errorRatePerAccess currently uses the fast-scale tables. */
bool peTableEnabled();

} // namespace eval
