#include "timing/path_population.hh"

#include <algorithm>
#include <cmath>

#include "kernels/path_soa.hh"
#include "timing/alpha_power.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

namespace {

/**
 * Structural delay fraction, sensitization, and (for memory cells) the
 * tail quantile of the per-cell random variation.
 */
struct StructuralPath
{
    double fraction;         ///< of the nominal clock period, at corner
    double sensitization;
    /** When >= 0: importance-sampled standard-normal quantile for the
     *  path's random Vt component (memory cells); < 0 means "draw the
     *  random component normally with gate averaging". */
    double tailZ = -1.0;
};

/**
 * Memory arrays: decoders/wordlines/bitlines are replicated, so all
 * paths have nearly the same structural length, but each access
 * exercises only one row/cell out of tens of thousands.  The slow
 * outliers are cells deep in the random-variation tail, each touched
 * with probability ~1/totalCells.  We importance-sample the top
 * tailFraction of the cell population so the model can resolve error
 * rates far below one failure per access — that resolution is what
 * lets timing speculation clock memory structures past fvar at all.
 */
void
drawMemoryPaths(std::vector<StructuralPath> &out, std::size_t count,
                const PathPopulationParams &pp, Rng &rng)
{
    const double n = static_cast<double>(pp.memoryTotalCells);
    // The sampled tail spans the top-K cells of the array, K set by
    // the tail fraction but at least 10 so small arrays are handled:
    // a 128-row register file's "tail" is just its slowest rows, and
    // its deepest cell sits near the 1 - 1/N quantile.  Redundancy
    // (large caches) trims the far end to 1 - repairedFraction.
    const double k = std::min(n, std::max(10.0, pp.memoryTailFraction * n));
    const double lo = 1.0 - k / n;
    const double hi =
        1.0 - std::max(pp.memoryRepairedFraction, 1.0 / n);
    const double sens = (hi - lo) / static_cast<double>(count);

    for (std::size_t i = 0; i < count; ++i) {
        StructuralPath p;
        p.fraction = 1.0 - std::abs(rng.gaussian(0.0, 0.008));
        p.tailZ = normalQuantile(rng.uniform(lo, hi));
        p.sensitization = sens;
        out.push_back(p);
    }

    // Bulk pseudo-path: the quantile just below the sampled tail,
    // standing in for the rest of the cells.  If the clock cuts into
    // the bulk, essentially every access fails.
    StructuralPath bulk;
    bulk.fraction = 1.0;
    bulk.tailZ = normalQuantile(std::max(lo, 0.5));
    bulk.sensitization = 0.9;
    out.push_back(bulk);
}

/**
 * Random logic: the design tools leave a wide variety of path lengths
 * below the critical-path wall, and the longer a path is, the more
 * specific the input pattern needed to exercise it fully — so the
 * near-critical paths fire rarely while short paths fire often.  This
 * coupling produces the gradual error onset of Fig 8(a): clocking a
 * little past fvar only exposes rare paths.
 */
StructuralPath
drawLogicPath(Rng &rng)
{
    StructuralPath p;
    p.fraction = 1.0 - std::abs(rng.gaussian(0.0, 0.16));
    p.fraction = std::max(p.fraction, 0.4);
    const double closeness = (p.fraction - 0.4) / 0.6;   // 1 at the wall
    const double exponent =
        0.5 + 5.5 * closeness + rng.gaussian(0.0, 0.5);
    p.sensitization =
        std::min(0.5, std::pow(10.0, -std::max(exponent, 0.3)));
    return p;
}

/**
 * The frequently-exercised short-path mass of a logic stage: nearly
 * every access drives these, so a clock deep inside the distribution
 * fails on almost every cycle (PE -> 1 at heavy overclock) even though
 * the near-critical onset is gradual.
 */
void
appendLogicBulk(std::vector<StructuralPath> &out)
{
    out.push_back({0.65, 0.90, -1.0});
    out.push_back({0.75, 0.50, -1.0});
}

} // namespace

PathPopulationParams
defaultPathParams(SubsystemId id)
{
    PathPopulationParams pp;
    switch (id) {
      case SubsystemId::Dcache:
      case SubsystemId::Icache:
        // Large caches: tens of thousands of cells, but column/row
        // redundancy repairs the worst cells, and the SRAM-Razor
        // duplicate sense amps give speculative reads a late-sampling
        // margin (Sec 5).
        pp.memoryTotalCells = 65536;
        pp.memoryRepairedFraction = 0.002;
        pp.structuralScale = kRazorL1Margin;
        break;
      case SubsystemId::DTLB:
      case SubsystemId::ITLB:
        pp.memoryTotalCells = 128;    // 64-128 entry CAM, no spares
        break;
      case SubsystemId::IntReg:
      case SubsystemId::FPReg:
      case SubsystemId::IntMap:
      case SubsystemId::FPMap:
        // The per-access critical path is the addressed row; the tail
        // is over row drivers, not individual bit cells.
        pp.memoryTotalCells = 128;
        break;
      case SubsystemId::IntQ:
      case SubsystemId::FPQ:
        // Wakeup CAM match lines use minimum-width devices across the
        // full entry x tag-bit count: deep random tail, no redundancy.
        pp.memoryTotalCells = 8192;
        break;
      case SubsystemId::LdStQ:
        pp.memoryTotalCells = 1024;   // CAM-heavy but shallow
        break;
      case SubsystemId::BranchPred:
        pp.memoryTotalCells = 2048;   // pattern-table rows
        break;
      default:
        break;                         // logic stages ignore these
    }
    return pp;
}

PathPopulation
buildPathPopulation(const Chip &chip, std::size_t core, SubsystemId id,
                    const PathPopulationParams &params, Rng &rng)
{
    EVAL_ASSERT(params.numPaths > 1, "population needs >1 path");
    EVAL_ASSERT(params.gatesPerPath >= 1.0, "gatesPerPath >= 1");
    EVAL_ASSERT(params.memoryTailFraction > 0.0 &&
                    params.memoryTailFraction < 0.5,
                "memory tail fraction in (0, 0.5)");

    const SubsystemInfo &info = chip.floorplan().subsystem(core, id);
    const ProcessParams &proc = chip.params();

    // 1. Draw structural paths by circuit style.
    std::vector<StructuralPath> structural;
    structural.reserve(params.numPaths + 2);
    switch (info.type) {
      case StageType::Memory:
        drawMemoryPaths(structural, params.numPaths, params, rng);
        break;
      case StageType::Logic:
        for (std::size_t i = 0; i < params.numPaths; ++i)
            structural.push_back(drawLogicPath(rng));
        appendLogicBulk(structural);
        break;
      case StageType::Mixed:
        drawMemoryPaths(structural, params.numPaths / 2, params, rng);
        for (std::size_t i = 0; i < params.numPaths / 2; ++i)
            structural.push_back(drawLogicPath(rng));
        appendLogicBulk(structural);
        break;
    }

    // 2. Normalize to the critical-path wall: the slowest *structural*
    //    path exactly meets the nominal period at the corner.
    double maxFrac = 0.0;
    for (const auto &p : structural)
        maxFrac = std::max(maxFrac, p.fraction);
    for (auto &p : structural)
        p.fraction /= maxFrac;

    // 3. Low-slope re-optimization (Tilt, Sec 3.3.1): widen the
    //    structural spread about the wall without touching the slowest
    //    path, doubling the variance (per Augsburger & Nikolic data the
    //    near-critical bulk moves away from the wall).
    if (params.lowSlope) {
        const double spread = std::sqrt(2.0);
        for (auto &p : structural)
            p.fraction = 1.0 - (1.0 - p.fraction) * spread;
    }

    // 4. Apply global knobs (structural margin, Shift techniques).
    for (auto &p : structural)
        p.fraction *= params.structuralScale * params.shiftFactor;

    // 5. Apply variation: sample each path's location in the subsystem
    //    rectangle, read the systematic Vt/Leff there, and add the
    //    random component — averaged over the path's gates for logic,
    //    or taken from the importance-sampled cell tail for memory.
    const double gateAveraging = 1.0 / std::sqrt(params.gatesPerPath);
    const double tNom = 1.0 / proc.freqNominal;

    PathPopulation pop;
    pop.type = info.type;
    pop.paths.reserve(structural.size());

    // Subsystem means come from the systematic map (the path draws
    // would be tail-biased for memory arrays).
    pop.vt0Mean = chip.map().vtSystematicMean(info.rect);
    pop.leffMean = chip.map().leffSystematicMean(info.rect);

    // Draw pass: the RNG stream must consume draws in exactly the
    // legacy per-path order (x, y, conditional Vt gaussian, Leff
    // gaussian) — only the delay evaluation moves into the SoA kernel.
    const std::size_t n = structural.size();
    std::vector<double> fraction(n), vt0(n), leff(n), delayRef(n);
    for (std::size_t i = 0; i < n; ++i) {
        const StructuralPath &sp = structural[i];
        const double x = rng.uniform(info.rect.x0, info.rect.x1);
        const double y = rng.uniform(info.rect.y0, info.rect.y1);
        const double vtRandom =
            sp.tailZ >= 0.0
                ? sp.tailZ * chip.map().vtSigmaRandom()
                : rng.gaussian(0.0,
                               chip.map().vtSigmaRandom() * gateAveraging);
        fraction[i] = sp.fraction;
        vt0[i] = chip.map().vtSystematicAt(x, y) + vtRandom;
        leff[i] =
            chip.map().leffSystematicAt(x, y) +
            rng.gaussian(0.0, chip.map().leffSigmaRandom() * gateAveraging);
    }

    // Delay pass: SoA corner-delay kernel (bit-identical to the
    // per-path gateDelayFactor loop; see kernels/path_soa.hh).
    cornerPathDelays(proc, tNom, fraction.data(), vt0.data(), leff.data(),
                     delayRef.data(), n);

    for (std::size_t i = 0; i < n; ++i) {
        TimingPath path;
        path.delayRef = delayRef[i];
        path.sensitization = clamp(structural[i].sensitization, 0.0, 1.0);
        pop.paths.push_back(path);
    }
    return pop;
}

} // namespace eval
