/**
 * @file
 * Core floorplan: the 15 subsystems of Figure 7(b), their circuit type
 * (logic / memory / mixed), area share, and placement on the die.
 *
 * The chip is a unit square holding a 4-core CMP; each core occupies
 * one quadrant, and the subsystem rectangles are laid out within the
 * core's quadrant.  Coordinates are in chip units (0..1).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eval {

/** Circuit style of a pipeline subsystem; sets its error-onset shape. */
enum class StageType { Logic, Memory, Mixed };

/** Printable name for a StageType. */
const char *stageTypeName(StageType t);

/** Identifiers for the 15 per-core subsystems (Figure 7(b)). */
enum class SubsystemId : std::size_t {
    Dcache, DTLB, FPQ, FPReg, LdStQ, FPUnit, FPMap, IntALU,
    IntReg, IntQ, IntMap, ITLB, Icache, BranchPred, Decode,
    NumSubsystems
};

constexpr std::size_t kNumSubsystems =
    static_cast<std::size_t>(SubsystemId::NumSubsystems);

/** Axis-aligned rectangle in chip coordinates. */
struct Rect
{
    double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
    double area() const { return width() * height(); }
    double centerX() const { return 0.5 * (x0 + x1); }
    double centerY() const { return 0.5 * (y0 + y1); }
};

/** Static description of one subsystem. */
struct SubsystemInfo
{
    SubsystemId id;
    std::string name;
    StageType type;
    double areaFraction;  ///< fraction of core area
    Rect rect;            ///< placement on the chip, filled by Floorplan
    bool isFpOnly;        ///< adapted only for FP applications
    bool isIntOnly;       ///< adapted only for integer applications
};

/**
 * The per-core floorplan replicated in each quadrant of the chip.
 *
 * Area fractions approximate an Athlon64-class 3-issue core: caches
 * dominate, the integer ALU cluster is 0.55% of processor area and the
 * FP adder+multiplier 1.90% (Figure 7(a)).
 */
class Floorplan
{
  public:
    /** Build the floorplan for the given core count (quadrant layout). */
    explicit Floorplan(std::size_t numCores = 4);

    std::size_t numCores() const { return numCores_; }

    /** Subsystem descriptor for core @p core. */
    const SubsystemInfo &subsystem(std::size_t core, SubsystemId id) const;

    /** All subsystems of one core. */
    const std::vector<SubsystemInfo> &coreSubsystems(std::size_t core) const;

    /** Look up a subsystem id by name; fatal on unknown name. */
    static SubsystemId idByName(const std::string &name);

  private:
    std::size_t numCores_;
    /** [core][subsystem] */
    std::vector<std::vector<SubsystemInfo>> subsystems_;
};

} // namespace eval

