#include "variation/correlated_field.hh"

#include <cmath>

#include "util/fft.hh"
#include "util/logging.hh"

namespace eval {

double
sphericalCorrelation(double r, double phi)
{
    EVAL_ASSERT(phi > 0.0, "correlation range must be positive");
    if (r >= phi)
        return 0.0;
    const double t = r / phi;
    return 1.0 - 1.5 * t + 0.5 * t * t * t;
}

CorrelatedFieldGenerator::CorrelatedFieldGenerator(std::size_t gridSize,
                                                   double phi)
    : n_(gridSize), m_(phi > 0.5 ? 4 * gridSize : 2 * gridSize),
      phi_(phi)
{
    // Long-range correlations need a larger embedding torus to stay
    // (near) positive definite; phi <= 0.5 fits in the 2x embedding.
    EVAL_ASSERT(isPowerOfTwo(n_), "grid size must be a power of two");

    // First row of the block-circulant covariance on the m_ x m_ torus:
    // correlations at wrap-around distances.  Cell spacing is the chip
    // pitch 1/n_ so that the n_ x n_ sub-block covers the unit chip.
    const double pitch = 1.0 / static_cast<double>(n_);
    std::vector<Complex> cov(m_ * m_);
    for (std::size_t iy = 0; iy < m_; ++iy) {
        for (std::size_t ix = 0; ix < m_; ++ix) {
            const double dx =
                pitch * static_cast<double>(std::min(ix, m_ - ix));
            const double dy =
                pitch * static_cast<double>(std::min(iy, m_ - iy));
            const double r = std::hypot(dx, dy);
            cov[iy * m_ + ix] = Complex(sphericalCorrelation(r, phi_), 0.0);
        }
    }

    fft2d(cov, m_, m_, false);

    // Eigenvalues of the circulant are the (real) DFT coefficients.
    // Clamp tiny negative values produced when the embedding is not
    // strictly positive definite, then renormalize so the sampled
    // field keeps unit variance: Var = sum(lambda) / M^2.
    double sum = 0.0;
    spectrumSqrt_.resize(m_ * m_);
    for (std::size_t i = 0; i < cov.size(); ++i) {
        double lambda = cov[i].real();
        if (lambda < 0.0)
            lambda = 0.0;
        spectrumSqrt_[i] = lambda;
        sum += lambda;
    }
    const double target = static_cast<double>(m_) * static_cast<double>(m_);
    EVAL_ASSERT(sum > 0.0, "degenerate correlation spectrum");
    const double rescale = target / sum;
    for (auto &s : spectrumSqrt_)
        s = std::sqrt(s * rescale);
}

std::vector<double>
CorrelatedFieldGenerator::sample(Rng &rng) const
{
    auto both = samplePair(rng, 0.0);
    return std::move(both.first);
}

std::pair<std::vector<double>, std::vector<double>>
CorrelatedFieldGenerator::samplePair(Rng &rng, double rho) const
{
    EVAL_ASSERT(rho >= -1.0 && rho <= 1.0, "cross-correlation in [-1,1]");

    // One complex white-noise draw yields two independent fields (real
    // and imaginary parts of the synthesized torus sample).
    std::vector<Complex> spec(m_ * m_);
    for (std::size_t i = 0; i < spec.size(); ++i) {
        spec[i] = Complex(rng.gaussian(), rng.gaussian()) * spectrumSqrt_[i];
    }
    fft2d(spec, m_, m_, true);

    const double norm = 1.0 / static_cast<double>(m_);
    std::vector<double> a(n_ * n_), b(n_ * n_);
    const double mix = std::sqrt(1.0 - rho * rho);
    for (std::size_t iy = 0; iy < n_; ++iy) {
        for (std::size_t ix = 0; ix < n_; ++ix) {
            const Complex v = spec[iy * m_ + ix];
            const double f1 = v.real() * norm;
            const double f2 = v.imag() * norm;
            a[iy * n_ + ix] = f1;
            b[iy * n_ + ix] = rho * f1 + mix * f2;
        }
    }
    return {std::move(a), std::move(b)};
}

} // namespace eval
