/**
 * @file
 * Generator of zero-mean, unit-variance Gaussian random fields with the
 * VARIUS spherical spatial-correlation structure, via circulant
 * embedding on a doubled torus (exact up to eigenvalue clamping).
 *
 * The correlation between two points depends only on their distance r
 * and decays to zero at range phi:
 *
 *   rho(r) = 1 - 1.5 (r/phi) + 0.5 (r/phi)^3     for r <= phi
 *   rho(r) = 0                                    for r >  phi
 */

#pragma once

#include <cstddef>
#include <vector>

#include "util/random.hh"

namespace eval {

/** Spherical correlation function with range phi (distances in chip
 *  units, chip width = 1). */
double sphericalCorrelation(double r, double phi);

/**
 * Samples correlated N x N fields over the unit chip.  The spectral
 * factor is precomputed once; each sample() costs two FFTs.
 */
class CorrelatedFieldGenerator
{
  public:
    /**
     * @param gridSize field resolution N (power of two)
     * @param phi      correlation range as a fraction of chip width
     */
    CorrelatedFieldGenerator(std::size_t gridSize, double phi);

    std::size_t gridSize() const { return n_; }

    /**
     * Draw one field: row-major N x N, ~N(0,1) marginals with the
     * spherical correlation structure.  Each call consumes randomness
     * from @p rng.
     */
    std::vector<double> sample(Rng &rng) const;

    /**
     * Draw a pair of fields with cross-correlation @p rho between them
     * (each field itself has the standard spatial structure).
     */
    std::pair<std::vector<double>, std::vector<double>>
    samplePair(Rng &rng, double rho) const;

  private:
    std::size_t n_;       ///< output grid
    std::size_t m_;       ///< embedding torus (2 * n_)
    double phi_;
    std::vector<double> spectrumSqrt_;  ///< sqrt of clamped eigenvalues
};

} // namespace eval

