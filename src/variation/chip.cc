#include "variation/chip.hh"

#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "util/logging.hh"

namespace eval {

Chip::Chip(std::uint64_t id, std::shared_ptr<const Floorplan> floorplan,
           VariationMap map, Rng rng)
    : id_(id), floorplan_(std::move(floorplan)), map_(std::move(map)),
      rng_(rng)
{
    EVAL_ASSERT(floorplan_ != nullptr, "chip requires a floorplan");
}

double
Chip::subsystemVtSys(std::size_t core, SubsystemId id) const
{
    return map_.vtSystematicMean(floorplan_->subsystem(core, id).rect);
}

double
Chip::subsystemLeffSys(std::size_t core, SubsystemId id) const
{
    return map_.leffSystematicMean(floorplan_->subsystem(core, id).rect);
}

ChipFactory::ChipFactory(const ProcessParams &params, std::uint64_t seed,
                         std::size_t numCores)
    : params_(params),
      floorplan_(std::make_shared<Floorplan>(numCores)),
      rng_(seed)
{
    if (params_.vtSigmaOverMu > 0.0) {
        fieldGen_ = std::make_unique<CorrelatedFieldGenerator>(
            params_.gridSize, params_.phi);
    }
}

Chip
ChipFactory::manufactureChip(std::uint64_t id) const
{
    // Everything below depends only on (factory seed, id): split()
    // derives the chip stream without advancing rng_, so chips can be
    // stamped out in any order — or concurrently — with identical
    // results.
    Rng chipRng = rng_.split(id + 1);
    if (!fieldGen_) {
        return Chip(id, floorplan_, VariationMap::flat(params_),
                    chipRng.fork(0xC41F));
    }
    VariationMap map(params_, *fieldGen_, chipRng);
    return Chip(id, floorplan_, std::move(map), chipRng.fork(0xC41F));
}

Chip
ChipFactory::manufacture()
{
    return manufactureChip(nextId_++);
}

std::vector<Chip>
ChipFactory::manufacture(std::size_t count)
{
    // Reserve the id range up front, then fill the batch in parallel;
    // each task owns its slot.  (Chip has no default constructor, so
    // the map produces heap chips that are then moved into place.)
    // Progress ticks are observational only — never read back by the
    // manufacturing path (DESIGN.md Sec 5f).
    static ProgressTracker &progress =
        ProgressRegistry::global().tracker("manufacture");
    progress.addTotal(count);
    const std::uint64_t base = nextId_;
    nextId_ += count;
    auto made = globalPool().parallelMap(
        count, [this, base](std::size_t i) {
            auto chip = std::make_unique<Chip>(
                manufactureChip(base + static_cast<std::uint64_t>(i)));
            progress.tick();
            return chip;
        });
    std::vector<Chip> chips;
    chips.reserve(count);
    for (auto &chip : made)
        chips.push_back(std::move(*chip));
    return chips;
}

Chip
ChipFactory::manufactureIdeal()
{
    return manufactureIdealAt(nextId_++);
}

Chip
ChipFactory::manufactureAt(std::uint64_t id) const
{
    return manufactureChip(id);
}

Chip
ChipFactory::manufactureIdealAt(std::uint64_t id) const
{
    // split(i) == fork(i) and neither advances rng_, so this emits
    // the exact chip manufactureIdeal() would have at cursor == id.
    Rng chipRng = rng_.split(id + 1);
    return Chip(id, floorplan_, VariationMap::flat(params_.withoutVariation()),
                chipRng.fork(0xC41F));
}

} // namespace eval
