#include "variation/chip.hh"

#include "util/logging.hh"

namespace eval {

Chip::Chip(std::uint64_t id, std::shared_ptr<const Floorplan> floorplan,
           VariationMap map, Rng rng)
    : id_(id), floorplan_(std::move(floorplan)), map_(std::move(map)),
      rng_(rng)
{
    EVAL_ASSERT(floorplan_ != nullptr, "chip requires a floorplan");
}

double
Chip::subsystemVtSys(std::size_t core, SubsystemId id) const
{
    return map_.vtSystematicMean(floorplan_->subsystem(core, id).rect);
}

double
Chip::subsystemLeffSys(std::size_t core, SubsystemId id) const
{
    return map_.leffSystematicMean(floorplan_->subsystem(core, id).rect);
}

ChipFactory::ChipFactory(const ProcessParams &params, std::uint64_t seed,
                         std::size_t numCores)
    : params_(params),
      floorplan_(std::make_shared<Floorplan>(numCores)),
      rng_(seed)
{
    if (params_.vtSigmaOverMu > 0.0) {
        fieldGen_ = std::make_unique<CorrelatedFieldGenerator>(
            params_.gridSize, params_.phi);
    }
}

Chip
ChipFactory::manufacture()
{
    const std::uint64_t id = nextId_++;
    Rng chipRng = rng_.fork(id + 1);
    if (!fieldGen_) {
        return Chip(id, floorplan_, VariationMap::flat(params_),
                    chipRng.fork(0xC41F));
    }
    VariationMap map(params_, *fieldGen_, chipRng);
    return Chip(id, floorplan_, std::move(map), chipRng.fork(0xC41F));
}

std::vector<Chip>
ChipFactory::manufacture(std::size_t count)
{
    std::vector<Chip> chips;
    chips.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        chips.push_back(manufacture());
    return chips;
}

Chip
ChipFactory::manufactureIdeal()
{
    const std::uint64_t id = nextId_++;
    Rng chipRng = rng_.fork(id + 1);
    return Chip(id, floorplan_, VariationMap::flat(params_.withoutVariation()),
                chipRng.fork(0xC41F));
}

} // namespace eval
