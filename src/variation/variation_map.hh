/**
 * @file
 * Per-chip personalized maps of the systematic components of Vt and
 * Leff, plus the analytic random components (VARIUS model, Sec 2.1 of
 * the paper).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "util/random.hh"
#include "variation/correlated_field.hh"
#include "variation/floorplan.hh"
#include "variation/process_params.hh"

namespace eval {

/**
 * Holds one chip's systematic Vt/Leff fields and exposes samplers that
 * add the per-transistor random component on demand.
 *
 * Systematic values are absolute: vt holds volts at the reference
 * temperature (100C), leff holds the normalized channel length.
 */
class VariationMap
{
  public:
    /**
     * Generate a chip map.
     *
     * @param params process description
     * @param gen    shared correlated-field generator (matching params)
     * @param rng    chip-specific random stream
     */
    VariationMap(const ProcessParams &params,
                 const CorrelatedFieldGenerator &gen, Rng &rng);

    /** Build a flat (no-variation) map for the NoVar environment. */
    static VariationMap flat(const ProcessParams &params);

    /**
     * Rebuild a map from snapshotted fields (src/valid serializers).
     * Both fields must be n*n for a power-of-two-sized grid matching
     * what the generator would produce; fatal otherwise.
     */
    static VariationMap fromFields(const ProcessParams &params,
                                   std::vector<double> vtSys,
                                   std::vector<double> leffSys);

    /** Systematic Vt at chip coordinates (x, y) in [0,1]^2, bilinear. */
    double vtSystematicAt(double x, double y) const;

    /** Systematic Leff at chip coordinates. */
    double leffSystematicAt(double x, double y) const;

    /** Mean systematic Vt over a rectangle (area-sampled). */
    double vtSystematicMean(const Rect &r) const;

    /** Mean systematic Leff over a rectangle. */
    double leffSystematicMean(const Rect &r) const;

    /** Random-component sigmas (per transistor). */
    double vtSigmaRandom() const { return params_.vtSigmaRan(); }
    double leffSigmaRandom() const { return params_.leffSigmaRan(); }

    const ProcessParams &params() const { return params_; }
    std::size_t gridSize() const { return n_; }

    /** Raw systematic fields, row-major n*n (snapshot serialization). */
    const std::vector<double> &vtSystematicField() const { return vtSys_; }
    const std::vector<double> &leffSystematicField() const
    {
        return leffSys_;
    }

  private:
    VariationMap(const ProcessParams &params, std::size_t n);

    double bilinear(const std::vector<double> &field, double x,
                    double y) const;
    double rectMean(const std::vector<double> &field, const Rect &r) const;

    ProcessParams params_;
    std::size_t n_;
    std::vector<double> vtSys_;    ///< absolute volts at reference temp
    std::vector<double> leffSys_;  ///< normalized length
};

} // namespace eval

