#include "variation/floorplan.hh"

#include <array>
#include <cmath>

#include "util/logging.hh"

namespace eval {

const char *
stageTypeName(StageType t)
{
    switch (t) {
      case StageType::Logic:  return "logic";
      case StageType::Memory: return "memory";
      case StageType::Mixed:  return "mixed";
    }
    return "?";
}

namespace {

struct ProtoSubsystem
{
    SubsystemId id;
    const char *name;
    StageType type;
    double areaFraction;
    bool fpOnly;
    bool intOnly;
};

/**
 * Figure 7(b) subsystem list.  Area fractions are of the *core* area
 * and sum to ~0.62; the remainder is occupied by non-adapted logic
 * (retirement, buses, clocking) and is not a timing-adapted subsystem.
 */
constexpr std::array<ProtoSubsystem, kNumSubsystems> protoTable = {{
    {SubsystemId::Dcache,     "Dcache",     StageType::Memory, 0.160,
     false, false},
    {SubsystemId::DTLB,       "DTLB",       StageType::Memory, 0.015,
     false, false},
    {SubsystemId::FPQ,        "FPQ",        StageType::Memory, 0.014,
     true,  false},
    {SubsystemId::FPReg,      "FPReg",      StageType::Memory, 0.020,
     true,  false},
    {SubsystemId::LdStQ,      "LdStQ",      StageType::Mixed,  0.028,
     false, false},
    {SubsystemId::FPUnit,     "FPUnit",     StageType::Logic,  0.019,
     true,  false},
    {SubsystemId::FPMap,      "FPMap",      StageType::Memory, 0.010,
     true,  false},
    {SubsystemId::IntALU,     "IntALU",     StageType::Logic,  0.0055,
     false, true},
    {SubsystemId::IntReg,     "IntReg",     StageType::Memory, 0.016,
     false, false},
    {SubsystemId::IntQ,       "IntQ",       StageType::Mixed,  0.022,
     false, true},
    {SubsystemId::IntMap,     "IntMap",     StageType::Memory, 0.010,
     false, false},
    {SubsystemId::ITLB,       "ITLB",       StageType::Memory, 0.010,
     false, false},
    {SubsystemId::Icache,     "Icache",     StageType::Memory, 0.160,
     false, false},
    {SubsystemId::BranchPred, "BranchPred", StageType::Mixed,  0.030,
     false, false},
    {SubsystemId::Decode,     "Decode",     StageType::Logic,  0.030,
     false, false},
}};

} // namespace

Floorplan::Floorplan(std::size_t numCores)
    : numCores_(numCores)
{
    EVAL_ASSERT(numCores >= 1 && numCores <= 4,
                "floorplan supports 1..4 cores");

    // Quadrant origin per core; each core occupies a 0.5 x 0.5 tile.
    static const double originX[4] = {0.0, 0.5, 0.0, 0.5};
    static const double originY[4] = {0.0, 0.0, 0.5, 0.5};

    subsystems_.resize(numCores_);
    for (std::size_t core = 0; core < numCores_; ++core) {
        auto &list = subsystems_[core];
        list.reserve(kNumSubsystems);

        // Lay the subsystems out in a 4 x 4 grid of cells within the
        // core tile; each subsystem becomes a rectangle centered in its
        // cell, sized to its area fraction of the core tile.
        const double coreArea = 0.5 * 0.5;
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            const auto &proto = protoTable[i];
            const std::size_t cellX = i % 4;
            const std::size_t cellY = i / 4;
            const double cellW = 0.5 / 4.0;
            const double cellCx =
                originX[core] + (static_cast<double>(cellX) + 0.5) * cellW;
            const double cellCy =
                originY[core] + (static_cast<double>(cellY) + 0.5) * cellW;
            const double side =
                std::sqrt(proto.areaFraction * coreArea);
            // A big unit (cache) may spill past its cell; keep it
            // within the core tile by clamping size and shifting.
            const double half = std::min(side / 2.0, cellW);
            double x0 = cellCx - half;
            double y0 = cellCy - half;
            x0 = std::min(std::max(x0, originX[core]),
                          originX[core] + 0.5 - 2.0 * half);
            y0 = std::min(std::max(y0, originY[core]),
                          originY[core] + 0.5 - 2.0 * half);

            SubsystemInfo info;
            info.id = proto.id;
            info.name = proto.name;
            info.type = proto.type;
            info.areaFraction = proto.areaFraction;
            info.isFpOnly = proto.fpOnly;
            info.isIntOnly = proto.intOnly;
            info.rect = {x0, y0, x0 + 2.0 * half, y0 + 2.0 * half};
            list.push_back(info);
        }
    }
}

const SubsystemInfo &
Floorplan::subsystem(std::size_t core, SubsystemId id) const
{
    EVAL_ASSERT(core < numCores_, "core index out of range");
    return subsystems_[core][static_cast<std::size_t>(id)];
}

const std::vector<SubsystemInfo> &
Floorplan::coreSubsystems(std::size_t core) const
{
    EVAL_ASSERT(core < numCores_, "core index out of range");
    return subsystems_[core];
}

SubsystemId
Floorplan::idByName(const std::string &name)
{
    for (const auto &proto : protoTable) {
        if (name == proto.name)
            return proto.id;
    }
    EVAL_FATAL("unknown subsystem name: ", name);
}

} // namespace eval
