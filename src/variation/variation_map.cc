#include "variation/variation_map.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

VariationMap::VariationMap(const ProcessParams &params, std::size_t n)
    : params_(params), n_(n),
      vtSys_(n * n, params.vtMean),
      leffSys_(n * n, params.leffMean)
{
}

VariationMap::VariationMap(const ProcessParams &params,
                           const CorrelatedFieldGenerator &gen, Rng &rng)
    : VariationMap(params, gen.gridSize())
{
    auto fields = gen.samplePair(rng, params.vtLeffCorrelation);
    const double vtSigma = params.vtSigmaSys();
    const double leffSigma = params.leffSigmaSys();
    for (std::size_t i = 0; i < n_ * n_; ++i) {
        vtSys_[i] = params.vtMean + vtSigma * fields.first[i];
        leffSys_[i] = params.leffMean + leffSigma * fields.second[i];
        // A physically meaningless negative/zero channel length can only
        // arise at absurd sigma settings; clamp defensively.
        leffSys_[i] = std::max(leffSys_[i], 0.1 * params.leffMean);
    }
}

VariationMap
VariationMap::flat(const ProcessParams &params)
{
    return VariationMap(params, params.gridSize);
}

VariationMap
VariationMap::fromFields(const ProcessParams &params,
                         std::vector<double> vtSys,
                         std::vector<double> leffSys)
{
    const auto n = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(vtSys.size()))));
    EVAL_ASSERT(n > 0 && n * n == vtSys.size() &&
                    vtSys.size() == leffSys.size(),
                "variation fields must be square and equally sized");
    VariationMap map(params, n);
    map.vtSys_ = std::move(vtSys);
    map.leffSys_ = std::move(leffSys);
    return map;
}

double
VariationMap::bilinear(const std::vector<double> &field, double x,
                       double y) const
{
    const double fx = clamp(x, 0.0, 1.0) * static_cast<double>(n_ - 1);
    const double fy = clamp(y, 0.0, 1.0) * static_cast<double>(n_ - 1);
    const auto ix = static_cast<std::size_t>(fx);
    const auto iy = static_cast<std::size_t>(fy);
    const std::size_t ix1 = std::min(ix + 1, n_ - 1);
    const std::size_t iy1 = std::min(iy + 1, n_ - 1);
    const double tx = fx - static_cast<double>(ix);
    const double ty = fy - static_cast<double>(iy);

    const double v00 = field[iy * n_ + ix];
    const double v01 = field[iy * n_ + ix1];
    const double v10 = field[iy1 * n_ + ix];
    const double v11 = field[iy1 * n_ + ix1];
    return lerp(lerp(v00, v01, tx), lerp(v10, v11, tx), ty);
}

double
VariationMap::rectMean(const std::vector<double> &field, const Rect &r) const
{
    // Sample on a small lattice; subsystem rectangles are a few grid
    // cells wide so a 4x4 lattice is ample.
    constexpr int samples = 4;
    double sum = 0.0;
    for (int iy = 0; iy < samples; ++iy) {
        for (int ix = 0; ix < samples; ++ix) {
            const double x = r.x0 + r.width() * (ix + 0.5) / samples;
            const double y = r.y0 + r.height() * (iy + 0.5) / samples;
            sum += bilinear(field, x, y);
        }
    }
    return sum / (samples * samples);
}

double
VariationMap::vtSystematicAt(double x, double y) const
{
    return bilinear(vtSys_, x, y);
}

double
VariationMap::leffSystematicAt(double x, double y) const
{
    return bilinear(leffSys_, x, y);
}

double
VariationMap::vtSystematicMean(const Rect &r) const
{
    return rectMean(vtSys_, r);
}

double
VariationMap::leffSystematicMean(const Rect &r) const
{
    return rectMean(leffSys_, r);
}

} // namespace eval
