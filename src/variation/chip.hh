/**
 * @file
 * A manufactured chip sample: floorplan + personalized variation map,
 * and a factory that stamps out chip populations (the paper repeats
 * each experiment over 100 chips with distinct systematic maps).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.hh"
#include "variation/floorplan.hh"
#include "variation/process_params.hh"
#include "variation/variation_map.hh"

namespace eval {

/** One manufactured die. */
class Chip
{
  public:
    Chip(std::uint64_t id, std::shared_ptr<const Floorplan> floorplan,
         VariationMap map, Rng rng);

    std::uint64_t id() const { return id_; }
    const Floorplan &floorplan() const { return *floorplan_; }
    const VariationMap &map() const { return map_; }
    const ProcessParams &params() const { return map_.params(); }

    /** Chip-local random stream (path populations etc.). */
    Rng forkRng(std::uint64_t label) const { return rng_.fork(label); }

    /** Current chip-local generator (snapshot serialization; fork is
     *  const, so the state only changes when the chip is rebuilt). */
    const Rng &rng() const { return rng_; }

    /** Mean systematic Vt of a subsystem (volts at reference temp). */
    double subsystemVtSys(std::size_t core, SubsystemId id) const;

    /** Mean systematic Leff of a subsystem (normalized). */
    double subsystemLeffSys(std::size_t core, SubsystemId id) const;

  private:
    std::uint64_t id_;
    std::shared_ptr<const Floorplan> floorplan_;
    VariationMap map_;
    mutable Rng rng_;
};

/** Generates reproducible chip populations. */
class ChipFactory
{
  public:
    ChipFactory(const ProcessParams &params, std::uint64_t seed,
                std::size_t numCores = 4);

    /** Manufacture the next chip in the population. */
    Chip manufacture();

    /**
     * Manufacture a batch of @p count chips.  Chips are generated in
     * parallel on the global thread pool; chip @p i depends only on
     * the factory seed and its id (Rng::split), so the population is
     * identical to @p count serial manufacture() calls for any thread
     * count.
     */
    std::vector<Chip> manufacture(std::size_t count);

    /** An ideal chip with zero variation (NoVar environment). */
    Chip manufactureIdeal();

    /**
     * Manufacture the chip with identity @p id without advancing the
     * factory cursor.  Pure in (factory seed, id) — byte-identical to
     * the chip a fresh factory would emit as its @p id'th
     * manufacture() call — so shard workers can stamp out any slice
     * of the population lazily and still match the monolithic run.
     */
    Chip manufactureAt(std::uint64_t id) const;

    /**
     * The ideal chip manufactureIdeal() would emit when the cursor
     * sits at @p id, without advancing the cursor.  The ideal chip's
     * personality depends on its id, and the experiment driver always
     * manufactures it *after* the population, so callers must pass
     * the population size to reproduce the monolithic reference
     * (see ExperimentContext).
     */
    Chip manufactureIdealAt(std::uint64_t id) const;

    const ProcessParams &params() const { return params_; }
    const std::shared_ptr<const Floorplan> &floorplan() const
    {
        return floorplan_;
    }

  private:
    /** Stamp out the chip with identity @p id (pure in (seed, id)). */
    Chip manufactureChip(std::uint64_t id) const;

    ProcessParams params_;
    std::shared_ptr<const Floorplan> floorplan_;
    std::unique_ptr<CorrelatedFieldGenerator> fieldGen_;
    Rng rng_;
    std::uint64_t nextId_ = 0;
};

} // namespace eval

