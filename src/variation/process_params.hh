/**
 * @file
 * Technology and variation parameters for the modeled 45nm process.
 *
 * Values follow Figure 7(a) of the EVAL paper (MICRO 2008) and the
 * VARIUS model it builds on: Vt mean 150mV at 100C with sigma/mu 0.09
 * split equally between systematic and random components, Leff sigma/mu
 * half of Vt's, spatial-correlation range phi = 0.5 of the chip width.
 */

#pragma once

#include <cmath>
#include <cstddef>

namespace eval {

/** Boltzmann q/k ratio in kelvin per volt (q/kB). */
constexpr double kQOverK = 11604.52;

/** Celsius to kelvin. */
constexpr double
celsiusToKelvin(double c)
{
    return c + 273.15;
}

/** Process, variation, and device-model constants. */
struct ProcessParams
{
    // -- Nominal operating point (Figure 7(a)) --
    double vddNominal = 1.0;        ///< V
    double freqNominal = 4.0e9;     ///< Hz, no-variation frequency
    double tempNominalC = 85.0;     ///< C, design-corner temperature

    // -- Threshold voltage --
    double vtMean = 0.150;          ///< V at the reference temperature
    double vtRefTempC = 100.0;      ///< C, temperature of vtMean spec
    double vtSigmaOverMu = 0.09;    ///< total sigma/mu
    double vtSystematicShare = 0.5; ///< fraction of Vt variance systematic

    // -- Effective channel length (normalized to 1.0 nominal) --
    double leffMean = 1.0;
    double leffSigmaRatio = 0.5;    ///< Leff sigma/mu = ratio * Vt sigma/mu
    double leffSystematicShare = 0.5;
    /** Correlation between Vt and Leff systematic fields (short-channel
     *  coupling); VARIUS derives part of Vt's variation from Leff's. */
    double vtLeffCorrelation = 0.5;

    // -- Spatial correlation --
    double phi = 0.5;               ///< range as fraction of chip width
    std::size_t gridSize = 64;      ///< systematic-map resolution (po2)

    // -- Alpha-power-law delay model (Sakurai-Newton) --
    /** Effective path-level velocity-saturation exponent.  Transistor-
     *  level alpha at 45nm is ~1.3; full pipeline paths (gate + wire +
     *  RC mix) respond to Vdd more strongly, and this value is
     *  calibrated so per-subsystem ASV buys the frequency the paper's
     *  Figure 8(c)/Figure 10 report. */
    double alphaPower = 1.75;
    double mobilityTempExponent = 1.5;  ///< mu(T) ~ T^-1.5

    /**
     * Delay sensitivity gain applied to Vt/Leff *deviations* (not to
     * the operating point).  Our simplified alpha-power abstraction
     * under-represents several variation channels VARIUS models in
     * detail (interconnect variation, Vt-Leff coupling through DIBL
     * roll-off, multi-Vt cell libraries), so the raw deviations would
     * make variation too benign.  This gain is calibrated (see
     * tests/core/calibration_test.cpp) so the Baseline environment
     * lands at the paper's ~78% of the no-variation frequency.
     */
    double delayVariationGain = 1.25;

    /**
     * Supply-droop guardband used when rating worst-case (Baseline)
     * designs: the "V" of PVT variation.  A plain processor must meet
     * timing at Vdd * (1 - guardband); timing-speculating designs run
     * at the actual supply and absorb rare droop-induced errors
     * through the checker.
     */
    double vddDroopGuardband = 0.05;

    // -- Vt modulation (Eq 9), constants after Martin et al. [19] --
    double k1 = -4.0e-4;   ///< V/K: Vt drops as temperature rises
    double k2 = -0.05;   ///< V/V: DIBL, Vt drops as Vdd rises
    double k3 = -0.06;   ///< V/V: body effect, FBB (Vbb>0) lowers Vt

    /** Derived: total Vt sigma in volts. */
    double vtSigma() const { return vtMean * vtSigmaOverMu; }

    /** Derived: systematic Vt sigma in volts. */
    double
    vtSigmaSys() const
    {
        return vtSigma() * std::sqrt(vtSystematicShare);
    }

    /** Derived: random Vt sigma in volts. */
    double
    vtSigmaRan() const
    {
        return vtSigma() * std::sqrt(1.0 - vtSystematicShare);
    }

    /** Derived: total Leff sigma (normalized units). */
    double
    leffSigma() const
    {
        return leffMean * leffSigmaRatio * vtSigmaOverMu;
    }

    double
    leffSigmaSys() const
    {
        return leffSigma() * std::sqrt(leffSystematicShare);
    }

    double
    leffSigmaRan() const
    {
        return leffSigma() * std::sqrt(1.0 - leffSystematicShare);
    }

    /** Vt at temperature tC, nominal Vdd, zero body bias (Eq 9). */
    double
    vtAtTemp(double tC) const
    {
        return vtMean + k1 * (tC - vtRefTempC);
    }

    /** A zero-variation copy of these parameters (NoVar environment). */
    ProcessParams
    withoutVariation() const
    {
        ProcessParams p = *this;
        p.vtSigmaOverMu = 0.0;
        p.leffSigmaRatio = 0.0;
        return p;
    }
};

} // namespace eval

