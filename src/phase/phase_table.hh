/**
 * @file
 * Saved-configuration table: once the controller has chosen an
 * operating point for a phase, re-entering that phase reuses the saved
 * configuration instead of re-running the controller (Sec 4.3.3).
 */

#pragma once

#include <cstddef>
#include <map>
#include <optional>

namespace eval {

/** Maps phase id -> saved configuration of type Config. */
template <typename Config>
class PhaseTable
{
  public:
    /** Look up a saved configuration. */
    std::optional<Config>
    lookup(std::size_t phaseId) const
    {
        auto it = table_.find(phaseId);
        if (it == table_.end())
            return std::nullopt;
        return it->second;
    }

    /** Save (or overwrite) a configuration. */
    void
    save(std::size_t phaseId, const Config &cfg)
    {
        table_[phaseId] = cfg;
    }

    /** Drop every saved configuration (e.g. after a TH change). */
    void invalidate() { table_.clear(); }

    std::size_t size() const { return table_.size(); }

  private:
    // std::map, not unordered: only point lookups today, but a future
    // "dump the table" or "iterate saved configs" path must see a
    // deterministic phase-id order (det-unordered).
    std::map<std::size_t, Config> table_;
};

} // namespace eval

