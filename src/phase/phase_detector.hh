/**
 * @file
 * Hardware application-phase detector after Sherwood et al. (Sec 4.3.2
 * and Figure 7(a)): basic-block execution frequencies are accumulated
 * into a 32-bucket vector with 6-bit saturating counters; at the end
 * of each interval the vector is compared against the signatures of
 * known phases (Manhattan distance) and either matched or registered
 * as a new phase.
 */

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace eval {

/** BBV accumulator: 32 buckets x 6-bit saturating counters. */
class BbvAccumulator
{
  public:
    static constexpr std::size_t kBuckets = 32;
    static constexpr std::uint32_t kCounterMax = 63;   // 6 bits

    /** Record the end of a basic block: its branch PC and length. */
    void note(std::uint64_t branchPc, std::uint32_t blockLength);

    /** Normalized vector (sums to ~1 when non-empty). */
    std::array<double, kBuckets> normalized() const;

    std::uint64_t blocksSeen() const { return blocks_; }
    void reset();

  private:
    std::array<std::uint32_t, kBuckets> buckets_{};
    std::uint64_t blocks_ = 0;
};

/** Result of closing one detection interval. */
struct PhaseDecision
{
    std::size_t phaseId;    ///< matched or newly created phase
    bool isNewPhase;        ///< first time this phase is seen
    bool changed;           ///< different phase than the last interval
    double distance;        ///< Manhattan distance to the matched phase
};

/** The phase classifier over interval BBVs. */
class PhaseDetector
{
  public:
    /**
     * @param matchThreshold Manhattan distance (on normalized BBVs,
     *                       max 2.0) under which intervals belong to
     *                       the same phase
     * @param maxPhases      signature-table capacity
     */
    explicit PhaseDetector(double matchThreshold = 0.25,
                           std::size_t maxPhases = 64);

    /** Classify the interval just ended. */
    PhaseDecision endInterval(const BbvAccumulator &bbv);

    std::size_t numPhases() const { return signatures_.size(); }
    std::optional<std::size_t> currentPhase() const { return current_; }

  private:
    double matchThreshold_;
    std::size_t maxPhases_;
    std::vector<std::array<double, BbvAccumulator::kBuckets>> signatures_;
    std::optional<std::size_t> current_;
};

} // namespace eval

