#include "phase/phase_detector.hh"

#include <algorithm>
#include <cmath>

#include "stats/stat_registry.hh"
#include "util/logging.hh"

namespace eval {

void
BbvAccumulator::note(std::uint64_t branchPc, std::uint32_t blockLength)
{
    // Multiplicative hash of the branch PC picks the bucket.
    const std::uint64_t h = branchPc * 0x9e3779b97f4a7c15ULL;
    const auto bucket = static_cast<std::size_t>(h >> 59);   // top 5 bits
    static_assert(kBuckets == 32, "bucket shift assumes 32 buckets");

    // Weight by block length.  The 6-bit counters age by halving every
    // bucket when one would saturate, preserving relative proportions
    // over arbitrarily long intervals (the hardware's shift trick).
    const std::uint32_t add = std::max<std::uint32_t>(1, blockLength / 4);
    if (buckets_[bucket] + add > kCounterMax) {
        for (auto &b : buckets_)
            b >>= 1;
    }
    buckets_[bucket] = std::min(kCounterMax, buckets_[bucket] + add);
    ++blocks_;
}

std::array<double, BbvAccumulator::kBuckets>
BbvAccumulator::normalized() const
{
    std::array<double, kBuckets> out{};
    double total = 0.0;
    for (std::uint32_t b : buckets_)
        total += b;
    if (total <= 0.0)
        return out;
    for (std::size_t i = 0; i < kBuckets; ++i)
        out[i] = buckets_[i] / total;
    return out;
}

void
BbvAccumulator::reset()
{
    buckets_.fill(0);
    blocks_ = 0;
}

PhaseDetector::PhaseDetector(double matchThreshold, std::size_t maxPhases)
    : matchThreshold_(matchThreshold), maxPhases_(maxPhases)
{
    EVAL_ASSERT(matchThreshold > 0.0 && maxPhases > 0,
                "detector parameters must be positive");
}

PhaseDecision
PhaseDetector::endInterval(const BbvAccumulator &bbv)
{
    const auto vec = bbv.normalized();

    double bestDist = 1e9;
    std::size_t bestId = 0;
    for (std::size_t i = 0; i < signatures_.size(); ++i) {
        double dist = 0.0;
        for (std::size_t b = 0; b < BbvAccumulator::kBuckets; ++b)
            dist += std::abs(vec[b] - signatures_[i][b]);
        if (dist < bestDist) {
            bestDist = dist;
            bestId = i;
        }
    }

    PhaseDecision decision{};
    if (!signatures_.empty() && bestDist <= matchThreshold_) {
        decision.phaseId = bestId;
        decision.isNewPhase = false;
        decision.distance = bestDist;
        // Exponentially age the signature toward the newest interval.
        auto &sig = signatures_[bestId];
        for (std::size_t b = 0; b < BbvAccumulator::kBuckets; ++b)
            sig[b] = 0.75 * sig[b] + 0.25 * vec[b];
    } else if (signatures_.size() < maxPhases_) {
        signatures_.push_back(vec);
        decision.phaseId = signatures_.size() - 1;
        decision.isNewPhase = true;
        decision.distance = bestDist;
    } else {
        // Table full: fall back to the closest signature.
        decision.phaseId = bestId;
        decision.isNewPhase = false;
        decision.distance = bestDist;
    }

    decision.changed = !current_ || *current_ != decision.phaseId;
    current_ = decision.phaseId;

    static Counter &intervals =
        StatRegistry::global().counter("phase.intervals");
    static Counter &newPhases =
        StatRegistry::global().counter("phase.new_phases");
    static Counter &changes =
        StatRegistry::global().counter("phase.changes");
    intervals.inc();
    if (decision.isNewPhase)
        newPhases.inc();
    if (decision.changed)
        changes.inc();
    return decision;
}

} // namespace eval
