#include "trace/span_tracer.hh"

// eval-lint: counters-only tracing flag, ring-capacity config, and drop/tid
// counters are independent observational atomics; event payloads are
// guarded by the per-thread-log mutex.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace eval {

namespace {

/** Shared epoch for every trace timestamp: captured once, before any
 *  span can be recorded (first call wins; the race window is the very
 *  first traceNowNs call, which happens on the main thread during
 *  flag parsing in practice). */
std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::atomic<bool> tracingFlag{false};
std::atomic<std::size_t> ringCapacityCfg{SpanTracer::kDefaultRingCapacity};
std::atomic<std::uint64_t> droppedEvents{0};
std::atomic<int> nextThreadId{0};

/**
 * One thread's event ring.  Owned jointly by the thread (thread_local
 * shared_ptr) and the global registry, so events survive thread exit
 * until export.  The mutex only guards ring storage against a
 * concurrent export; the owning thread never blocks on another
 * thread.
 */
struct ThreadLog
{
    std::mutex m;
    std::vector<SpanEvent> ring; ///< insertion ring, `next` = oldest
    std::size_t next = 0;
    int tid = 0;

    /** Open-span name stack; touched only by the owning thread. */
    std::vector<const char *> stack;

    void
    append(SpanEvent &&ev)
    {
        const std::size_t cap =
            std::max<std::size_t>(ringCapacityCfg.load(
                                      std::memory_order_relaxed),
                                  16);
        std::lock_guard<std::mutex> lock(m);
        if (ring.size() > cap) {
            // Capacity was lowered: restart the ring with the tail.
            ring.erase(ring.begin(),
                       ring.begin() +
                           static_cast<std::ptrdiff_t>(ring.size() - cap));
            next = 0;
        }
        if (ring.size() < cap) {
            ring.push_back(std::move(ev));
        } else {
            ring[next] = std::move(ev);
            next = (next + 1) % cap;
            droppedEvents.fetch_add(1, std::memory_order_relaxed);
        }
    }
};

struct Registry
{
    std::mutex m;
    std::vector<std::shared_ptr<ThreadLog>> logs;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: usable during exit
    return *r;
}

ThreadLog &
threadLog()
{
    thread_local std::shared_ptr<ThreadLog> log = [] {
        auto l = std::make_shared<ThreadLog>();
        l->tid = nextThreadId.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(registry().m);
        registry().logs.push_back(l);
        return l;
    }();
    return *log;
}

void
jsonEscapeInto(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processEpoch())
            .count());
}

int
traceThreadId()
{
    return threadLog().tid;
}

SpanTracer &
SpanTracer::global()
{
    static SpanTracer tracer;
    return tracer;
}

void
SpanTracer::setEnabled(bool enabled)
{
    // Pin the epoch before the first event so ts=0 is process start.
    processEpoch();
    tracingFlag.store(enabled, std::memory_order_relaxed);
}

bool
SpanTracer::enabled() const
{
    return tracingFlag.load(std::memory_order_relaxed);
}

void
SpanTracer::setRingCapacity(std::size_t events)
{
    ringCapacityCfg.store(std::max<std::size_t>(events, 16),
                       std::memory_order_relaxed);
}

std::size_t
SpanTracer::ringCapacity() const
{
    return ringCapacityCfg.load(std::memory_order_relaxed);
}

std::size_t
SpanTracer::eventCount() const
{
    std::size_t n = 0;
    std::lock_guard<std::mutex> lock(registry().m);
    for (const auto &log : registry().logs) {
        std::lock_guard<std::mutex> logLock(log->m);
        n += log->ring.size();
    }
    return n;
}

std::uint64_t
SpanTracer::droppedCount() const
{
    return droppedEvents.load(std::memory_order_relaxed);
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(registry().m);
    for (const auto &log : registry().logs) {
        std::lock_guard<std::mutex> logLock(log->m);
        log->ring.clear();
        log->next = 0;
    }
    droppedEvents.store(0, std::memory_order_relaxed);
}

std::vector<SpanEvent>
SpanTracer::snapshotEvents() const
{
    std::vector<SpanEvent> out;
    {
        std::lock_guard<std::mutex> lock(registry().m);
        for (const auto &log : registry().logs) {
            std::lock_guard<std::mutex> logLock(log->m);
            out.insert(out.end(), log->ring.begin(), log->ring.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  return std::tie(a.startNs, a.tid, a.depth) <
                         std::tie(b.startNs, b.tid, b.depth);
              });
    return out;
}

std::string
SpanTracer::traceEventJson() const
{
    const std::vector<SpanEvent> events = snapshotEvents();

    std::vector<int> tids;
    for (const SpanEvent &ev : events)
        tids.push_back(ev.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    char buf[64];
    for (int tid : tids) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  {\"name\": \"thread_name\", \"ph\": \"M\", "
               "\"pid\": 1, \"tid\": " +
               std::to_string(tid) + ", \"args\": {\"name\": \"" +
               (tid == 0 ? std::string("main")
                         : "worker-" + std::to_string(tid)) +
               "\"}}";
    }
    for (const SpanEvent &ev : events) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  {\"name\": \"";
        jsonEscapeInto(out, ev.name);
        out += "\", \"cat\": \"eval\", \"ph\": \"X\", \"ts\": ";
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(ev.startNs) / 1000.0);
        out += buf;
        out += ", \"dur\": ";
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(ev.durNs) / 1000.0);
        out += buf;
        out += ", \"pid\": 1, \"tid\": " + std::to_string(ev.tid);
        out += ", \"args\": {";
        for (std::size_t i = 0; i < ev.args.size(); ++i) {
            out += (i ? ", \"" : "\"");
            jsonEscapeInto(out, ev.args[i].first);
            out += "\": " + ev.args[i].second;
        }
        out += "}}";
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
SpanTracer::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = traceEventJson();
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok && written != json.size())
        std::fclose(f);
    return ok;
}

const char *
SpanTracer::currentSpanName()
{
    const ThreadLog &log = threadLog();
    return log.stack.empty() ? "" : log.stack.back();
}

namespace trace_detail {

bool
tracingEnabled()
{
    return tracingFlag.load(std::memory_order_relaxed);
}

std::uint64_t
beginSpanImpl(const char *)
{
    return traceNowNs();
}

void
endSpanImpl(const char *name, std::uint64_t startNs,
            std::vector<std::pair<std::string, std::string>> &&args)
{
    ThreadLog &log = threadLog();
    SpanEvent ev;
    ev.name = name;
    ev.startNs = startNs;
    const std::uint64_t now = traceNowNs();
    ev.durNs = now > startNs ? now - startNs : 0;
    ev.tid = log.tid;
    ev.depth = static_cast<int>(log.stack.size());
    ev.args = std::move(args);
    log.append(std::move(ev));
}

void
pushOpenSpan(const char *name)
{
    threadLog().stack.push_back(name);
}

void
popOpenSpan()
{
    ThreadLog &log = threadLog();
    if (!log.stack.empty())
        log.stack.pop_back();
}

} // namespace trace_detail

void
ScopedSpan::arg(const char *key, double value)
{
    if (!name_)
        return;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    args_.emplace_back(key, buf);
}

void
ScopedSpan::argUnsigned(const char *key, unsigned long long value)
{
    if (name_)
        args_.emplace_back(key, std::to_string(value));
}

void
ScopedSpan::argSigned(const char *key, long long value)
{
    if (name_)
        args_.emplace_back(key, std::to_string(value));
}

void
ScopedSpan::arg(const char *key, bool value)
{
    if (name_)
        args_.emplace_back(key, value ? "true" : "false");
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (!name_)
        return;
    std::string quoted = "\"";
    jsonEscapeInto(quoted, value);
    quoted += "\"";
    args_.emplace_back(key, std::move(quoted));
}

void
ScopedSpan::arg(const char *key, const char *value)
{
    arg(key, std::string(value));
}

} // namespace eval
