#include "trace/span_tracer.hh"

// eval-lint: counters-only tracing flag, ring-capacity config, and drop/tid
// counters are independent observational atomics; event payloads are
// guarded by the per-thread-log mutex.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace eval {

namespace {

/** Shared epoch for every trace timestamp: captured once, before any
 *  span can be recorded (first call wins; the race window is the very
 *  first traceNowNs call, which happens on the main thread during
 *  flag parsing in practice). */
std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::atomic<bool> tracingFlag{false};
std::atomic<std::size_t> ringCapacityCfg{SpanTracer::kDefaultRingCapacity};
std::atomic<std::uint64_t> droppedEvents{0};
std::atomic<int> nextThreadId{0};

/**
 * One thread's event ring.  Owned jointly by the thread (thread_local
 * shared_ptr) and the global registry, so events survive thread exit
 * until export.  The mutex only guards ring storage against a
 * concurrent export; the owning thread never blocks on another
 * thread.
 */
/** One open span on a thread's stack.  The parent-path key is built
 *  once here, at open, so close-time profile folding is a single map
 *  lookup with a ready-made key. */
struct OpenFrame
{
    const char *name = nullptr;
    std::string path;            ///< semicolon-joined chain incl. name
    std::uint64_t childNs = 0;   ///< Σ inclusive ns of closed children
};

/** Profile bucket payload; the path is the map key (and its last
 *  semicolon-separated component is the leaf name). */
struct ProfileCell
{
    std::uint64_t count = 0;
    std::uint64_t inclNs = 0;
    std::uint64_t selfNs = 0;
};

struct ThreadLog
{
    std::mutex m;
    std::vector<SpanEvent> ring; ///< insertion ring, `next` = oldest
    std::size_t next = 0;
    int tid = 0;

    /** Open-span frame stack; touched only by the owning thread. */
    std::vector<OpenFrame> stack;

    /** Exact (never-evicting) profile, keyed by span path.  Guarded
     *  by the same mutex as the ring so one close takes one lock. */
    std::map<std::string, ProfileCell> profile;

    /** Record one closed span: ring append + profile fold under a
     *  single (uncontended) lock acquisition. */
    void
    close(SpanEvent &&ev, const std::string &path,
          std::uint64_t selfNs)
    {
        const std::size_t cap =
            std::max<std::size_t>(ringCapacityCfg.load(
                                      std::memory_order_relaxed),
                                  16);
        std::lock_guard<std::mutex> lock(m);
        ProfileCell &cell = profile[path];
        ++cell.count;
        cell.inclNs += ev.durNs;
        cell.selfNs += selfNs;
        if (ring.size() > cap) {
            // Capacity was lowered: restart the ring with the tail.
            ring.erase(ring.begin(),
                       ring.begin() +
                           static_cast<std::ptrdiff_t>(ring.size() - cap));
            next = 0;
        }
        if (ring.size() < cap) {
            ring.push_back(std::move(ev));
        } else {
            ring[next] = std::move(ev);
            next = (next + 1) % cap;
            droppedEvents.fetch_add(1, std::memory_order_relaxed);
        }
    }
};

struct Registry
{
    std::mutex m;
    std::vector<std::shared_ptr<ThreadLog>> logs;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: usable during exit
    return *r;
}

ThreadLog &
threadLog()
{
    thread_local std::shared_ptr<ThreadLog> log = [] {
        auto l = std::make_shared<ThreadLog>();
        l->tid = nextThreadId.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(registry().m);
        registry().logs.push_back(l);
        return l;
    }();
    return *log;
}

void
jsonEscapeInto(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processEpoch())
            .count());
}

int
traceThreadId()
{
    return threadLog().tid;
}

SpanTracer &
SpanTracer::global()
{
    static SpanTracer tracer;
    return tracer;
}

void
SpanTracer::setEnabled(bool enabled)
{
    // Pin the epoch before the first event so ts=0 is process start.
    processEpoch();
    tracingFlag.store(enabled, std::memory_order_relaxed);
}

bool
SpanTracer::enabled() const
{
    return tracingFlag.load(std::memory_order_relaxed);
}

void
SpanTracer::setRingCapacity(std::size_t events)
{
    ringCapacityCfg.store(std::max<std::size_t>(events, 16),
                       std::memory_order_relaxed);
}

std::size_t
SpanTracer::ringCapacity() const
{
    return ringCapacityCfg.load(std::memory_order_relaxed);
}

std::size_t
SpanTracer::eventCount() const
{
    std::size_t n = 0;
    std::lock_guard<std::mutex> lock(registry().m);
    for (const auto &log : registry().logs) {
        std::lock_guard<std::mutex> logLock(log->m);
        n += log->ring.size();
    }
    return n;
}

std::uint64_t
SpanTracer::droppedCount() const
{
    return droppedEvents.load(std::memory_order_relaxed);
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(registry().m);
    for (const auto &log : registry().logs) {
        std::lock_guard<std::mutex> logLock(log->m);
        log->ring.clear();
        log->next = 0;
        log->profile.clear();
    }
    droppedEvents.store(0, std::memory_order_relaxed);
}

std::vector<SpanEvent>
SpanTracer::snapshotEvents() const
{
    std::vector<SpanEvent> out;
    {
        std::lock_guard<std::mutex> lock(registry().m);
        for (const auto &log : registry().logs) {
            std::lock_guard<std::mutex> logLock(log->m);
            out.insert(out.end(), log->ring.begin(), log->ring.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  return std::tie(a.startNs, a.tid, a.depth) <
                         std::tie(b.startNs, b.tid, b.depth);
              });
    return out;
}

std::string
SpanTracer::traceEventJson() const
{
    const std::vector<SpanEvent> events = snapshotEvents();

    std::vector<int> tids;
    for (const SpanEvent &ev : events)
        tids.push_back(ev.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    char buf[64];
    for (int tid : tids) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  {\"name\": \"thread_name\", \"ph\": \"M\", "
               "\"pid\": 1, \"tid\": " +
               std::to_string(tid) + ", \"args\": {\"name\": \"" +
               (tid == 0 ? std::string("main")
                         : "worker-" + std::to_string(tid)) +
               "\"}}";
    }
    for (const SpanEvent &ev : events) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  {\"name\": \"";
        jsonEscapeInto(out, ev.name);
        out += "\", \"cat\": \"eval\", \"ph\": \"X\", \"ts\": ";
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(ev.startNs) / 1000.0);
        out += buf;
        out += ", \"dur\": ";
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(ev.durNs) / 1000.0);
        out += buf;
        out += ", \"pid\": 1, \"tid\": " + std::to_string(ev.tid);
        out += ", \"args\": {";
        for (std::size_t i = 0; i < ev.args.size(); ++i) {
            out += (i ? ", \"" : "\"");
            jsonEscapeInto(out, ev.args[i].first);
            out += "\": " + ev.args[i].second;
        }
        out += "}}";
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
SpanTracer::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = traceEventJson();
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok && written != json.size())
        std::fclose(f);
    return ok;
}

const char *
SpanTracer::currentSpanName()
{
    const ThreadLog &log = threadLog();
    return log.stack.empty() ? "" : log.stack.back().name;
}

std::vector<ProfileBucket>
SpanTracer::snapshotProfile() const
{
    std::map<std::string, ProfileBucket> merged;
    {
        std::lock_guard<std::mutex> lock(registry().m);
        for (const auto &log : registry().logs) {
            std::lock_guard<std::mutex> logLock(log->m);
            for (const auto &[path, cell] : log->profile) {
                ProfileBucket &b = merged[path];
                b.count += cell.count;
                b.inclNs += cell.inclNs;
                b.selfNs += cell.selfNs;
            }
        }
    }
    std::vector<ProfileBucket> out;
    out.reserve(merged.size());
    for (auto &[path, bucket] : merged) {
        bucket.path = path;
        const std::size_t cut = path.rfind(';');
        bucket.name =
            cut == std::string::npos ? path : path.substr(cut + 1);
        out.push_back(std::move(bucket));
    }
    return out;
}

std::string
SpanTracer::profileJson() const
{
    const std::vector<ProfileBucket> buckets = snapshotProfile();
    std::string out = "{\"schema_version\": 1, \"spans\": [";
    bool first = true;
    for (const ProfileBucket &b : buckets) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  {\"path\": \"";
        jsonEscapeInto(out, b.path);
        out += "\", \"name\": \"";
        jsonEscapeInto(out, b.name);
        out += "\", \"count\": " + std::to_string(b.count);
        out += ", \"incl_ns\": " + std::to_string(b.inclNs);
        out += ", \"self_ns\": " + std::to_string(b.selfNs) + "}";
    }
    out += "\n]}\n";
    return out;
}

bool
SpanTracer::writeProfileJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = profileJson();
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok && written != json.size())
        std::fclose(f);
    return ok;
}

std::vector<std::pair<std::string, std::uint64_t>>
SpanTracer::selfTimeByName() const
{
    std::map<std::string, std::uint64_t> byName;
    for (const ProfileBucket &b : snapshotProfile())
        byName[b.name] += b.selfNs;
    std::vector<std::pair<std::string, std::uint64_t>> out(
        byName.begin(), byName.end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(b.second, a.first) <
                         std::tie(a.second, b.first);
              });
    return out;
}

namespace trace_detail {

bool
tracingEnabled()
{
    return tracingFlag.load(std::memory_order_relaxed);
}

std::uint64_t
beginSpanImpl(const char *name)
{
    ThreadLog &log = threadLog();
    OpenFrame frame;
    frame.name = name;
    if (log.stack.empty()) {
        frame.path = name;
    } else {
        frame.path.reserve(log.stack.back().path.size() + 1 +
                           std::char_traits<char>::length(name));
        frame.path = log.stack.back().path;
        frame.path += ';';
        frame.path += name;
    }
    log.stack.push_back(std::move(frame));
    // Clock read last: path construction charges the parent's self
    // time, not this span's duration.
    return traceNowNs();
}

void
endSpanImpl(const char *name, std::uint64_t startNs,
            std::vector<std::pair<std::string, std::string>> &&args)
{
    const std::uint64_t now = traceNowNs();
    ThreadLog &log = threadLog();
    SpanEvent ev;
    ev.name = name;
    ev.startNs = startNs;
    ev.durNs = now > startNs ? now - startNs : 0;
    ev.tid = log.tid;
    ev.args = std::move(args);

    std::string path = name; // fallback for an unmatched close
    std::uint64_t childNs = 0;
    if (!log.stack.empty()) {
        OpenFrame &frame = log.stack.back();
        path = std::move(frame.path);
        childNs = frame.childNs;
        log.stack.pop_back();
        if (!log.stack.empty())
            log.stack.back().childNs += ev.durNs;
    }
    ev.depth = static_cast<int>(log.stack.size());
    const std::uint64_t selfNs =
        ev.durNs > childNs ? ev.durNs - childNs : 0;
    log.close(std::move(ev), path, selfNs);
}

} // namespace trace_detail

void
ScopedSpan::arg(const char *key, double value)
{
    if (!name_)
        return;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    args_.emplace_back(key, buf);
}

void
ScopedSpan::argUnsigned(const char *key, unsigned long long value)
{
    if (name_)
        args_.emplace_back(key, std::to_string(value));
}

void
ScopedSpan::argSigned(const char *key, long long value)
{
    if (name_)
        args_.emplace_back(key, std::to_string(value));
}

void
ScopedSpan::arg(const char *key, bool value)
{
    if (name_)
        args_.emplace_back(key, value ? "true" : "false");
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (!name_)
        return;
    std::string quoted = "\"";
    jsonEscapeInto(quoted, value);
    quoted += "\"";
    args_.emplace_back(key, std::move(quoted));
}

void
ScopedSpan::arg(const char *key, const char *value)
{
    arg(key, std::string(value));
}

} // namespace eval
