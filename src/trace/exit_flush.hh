/**
 * @file
 * Crash-safe telemetry flushing.  A run that dies mid-experiment —
 * fatal() config error, uncaught exception, EVAL_ASSERT — used to
 * lose every telemetry artifact (--stats-out, --trace-out,
 * --trace-spans, manifest.json) because the writers only ran on the
 * happy path.  ExitFlush keeps a registry of flush closures and runs
 * whatever is still pending from a std::atexit hook and from a
 * std::terminate handler, so partial telemetry survives the abort
 * (often exactly the telemetry you need to debug it).
 *
 * Protocol:
 *  - Register each writer once its destination is known:
 *        const int id = ExitFlush::global().add("stats", [] {...});
 *  - On the normal path, call runNow() (runs and clears everything)
 *    or remove(id) after writing yourself.
 *  - Closures must be safe to run late in process teardown: they are
 *    invoked after main() returns (atexit) or from the terminate
 *    handler, exceptions are swallowed, and each closure runs at
 *    most once.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace eval {

class ExitFlush
{
  public:
    static ExitFlush &global();

    /**
     * Register a flush closure under a diagnostic @p label; returns
     * an id for remove().  The first registration installs the
     * atexit hook and chains the terminate handler.
     */
    int add(const std::string &label, std::function<void()> fn);

    /** Unregister (the writer ran on the normal path). */
    void remove(int id);

    /** Run every pending closure and clear the registry.  Idempotent;
     *  safe to call from handlers.  Exceptions are swallowed. */
    void runNow();

    /** Closures currently registered. */
    std::size_t pending() const;
};

} // namespace eval
