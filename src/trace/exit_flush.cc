#include "trace/exit_flush.hh"

#include <cstdlib>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

namespace eval {

namespace {

struct Entry
{
    int id = 0;
    std::string label;
    std::function<void()> fn;
};

struct FlushState
{
    std::mutex m;
    std::vector<Entry> entries;
    int nextId = 1;
    bool hooksInstalled = false;
    std::terminate_handler previousTerminate = nullptr;
};

FlushState &
state()
{
    // Leaked so the atexit/terminate hooks can run during teardown
    // regardless of static destruction order.
    static FlushState *s = new FlushState;
    return *s;
}

void
flushAllFromHook()
{
    ExitFlush::global().runNow();
}

[[noreturn]] void
terminateWithFlush()
{
    ExitFlush::global().runNow();
    std::terminate_handler prev;
    {
        std::lock_guard<std::mutex> lock(state().m);
        prev = state().previousTerminate;
    }
    if (prev && prev != terminateWithFlush)
        prev();
    std::abort();
}

} // namespace

ExitFlush &
ExitFlush::global()
{
    static ExitFlush flush;
    return flush;
}

int
ExitFlush::add(const std::string &label, std::function<void()> fn)
{
    FlushState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    if (!s.hooksInstalled) {
        s.hooksInstalled = true;
        std::atexit(flushAllFromHook);
        s.previousTerminate = std::set_terminate(terminateWithFlush);
    }
    const int id = s.nextId++;
    s.entries.push_back({id, label, std::move(fn)});
    return id;
}

void
ExitFlush::remove(int id)
{
    FlushState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    for (auto it = s.entries.begin(); it != s.entries.end(); ++it) {
        if (it->id == id) {
            s.entries.erase(it);
            return;
        }
    }
}

void
ExitFlush::runNow()
{
    // Swap the registry out under the lock, run outside it: a closure
    // that itself touches ExitFlush (or crashes into terminate again)
    // must not deadlock, and each closure runs at most once.
    std::vector<Entry> pendingEntries;
    {
        FlushState &s = state();
        std::lock_guard<std::mutex> lock(s.m);
        pendingEntries.swap(s.entries);
    }
    for (Entry &e : pendingEntries) {
        try {
            if (e.fn)
                e.fn();
        } catch (...) {
            // Flushing is best-effort during teardown.
        }
    }
}

std::size_t
ExitFlush::pending() const
{
    FlushState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    return s.entries.size();
}

} // namespace eval
