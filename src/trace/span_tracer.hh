/**
 * @file
 * Low-overhead span tracer with Chrome/Perfetto trace_event export.
 *
 * Where the stats layer (src/stats) answers "how much time went into
 * region X in total", spans answer "where did the wall-clock of THIS
 * run go, on which thread, nested under what": every instrumented
 * region records one complete event (begin timestamp + duration +
 * thread id + optional key/value args), and the whole run exports as
 * a single JSON file that https://ui.perfetto.dev (or Chrome's
 * about:tracing) renders as a multi-thread timeline.
 *
 * Design (mirrors the ScopedTimer conventions in src/stats):
 *  - Disabled is the hot case: a ScopedSpan on a disabled tracer
 *    costs one relaxed atomic load and records nothing — no clock
 *    read, no allocation, no lock.  Benches assert this stays true
 *    (bench_parallel_scaling footer).
 *  - Enabled recording is contention-free: every thread appends to
 *    its own fixed-capacity ring buffer.  The only lock an append
 *    takes is the buffer's own uncontended mutex (needed so a
 *    concurrent export cannot read half-written events); threads
 *    never contend with each other on the hot path.  When a ring
 *    fills, the oldest events are evicted (and counted), so tracing
 *    an arbitrarily long run is bounded-memory and the export keeps
 *    the most recent window.
 *  - Spans nest: each thread keeps a stack of open spans, and the
 *    exporter emits Chrome "X" (complete) events whose time
 *    containment reproduces the nesting in the UI.  The innermost
 *    open span name is queryable (currentSpanName) so the logging
 *    layer can stamp lines with their span context.
 *  - Every close also folds into the per-thread span PROFILE: a
 *    (parent-path, name) bucket accumulating count, inclusive ns, and
 *    self ns (inclusive minus the inclusive time of direct children).
 *    Unlike the ring, the profile never evicts — counts are exact for
 *    the whole run no matter how long it is — and it exports as
 *    profile.json (see DESIGN.md Sec 5j for the schema and the
 *    cross-shard merge semantics).
 *  - This file is the sanctioned home of wall-clock reads for
 *    tracing, alongside src/stats for profiling (see the
 *    det-wallclock lint rule): model code must not read clocks, but
 *    may open spans freely.
 *
 * Escape hatch discipline: ScopedSpan is the ONLY way model code may
 * create spans.  The raw beginSpan/endSpan handle API exists for the
 * tracer's own internals and is lint-banned elsewhere
 * (obs-span-leak), because a span handle that escapes its scope
 * produces overlapping, un-nestable events.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace eval {

/** Monotonic nanoseconds since process start (the sanctioned trace
 *  clock: logging timestamps and span events share this epoch). */
std::uint64_t traceNowNs();

/** Stable, small, process-unique id of the calling thread (assigned
 *  on first use; the first thread to ask gets 0). */
int traceThreadId();

/** One recorded span, as stored in the ring and exported to JSON.
 *  Args are pre-rendered JSON tokens (numbers raw, strings quoted)
 *  so export is a pure serialization pass. */
struct SpanEvent
{
    std::string name;
    std::uint64_t startNs = 0; ///< traceNowNs() at open
    std::uint64_t durNs = 0;
    int tid = 0;
    int depth = 0;             ///< nesting depth at open (0 = top)
    std::vector<std::pair<std::string, std::string>> args;
};

/** One (parent-path, name) profile bucket.  `path` is the semicolon-
 *  joined open-span chain ending in `name` (collapsed-stack key, e.g.
 *  "fig13;mc.chip;thermal.solve"); counts are exact u64 sums, so
 *  buckets merge associatively by summing (see src/shard trace
 *  merge). */
struct ProfileBucket
{
    std::string path;
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t inclNs = 0;
    std::uint64_t selfNs = 0; ///< inclNs minus direct children's inclNs
};

/**
 * The process-wide span sink.  Use SpanTracer::global(); private
 * instances exist only inside tests.
 */
class SpanTracer
{
  public:
    static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

    static SpanTracer &global();

    void setEnabled(bool enabled);
    bool enabled() const;

    /** Per-thread ring capacity (events).  Applies to rings created
     *  after the call; existing rings are trimmed on their next
     *  append.  Minimum 16. */
    void setRingCapacity(std::size_t events);
    std::size_t ringCapacity() const;

    /** Buffered events across all thread rings. */
    std::size_t eventCount() const;

    /** Events evicted from full rings since the last clear(). */
    std::uint64_t droppedCount() const;

    /** Drop every buffered event and profile bucket (keeps thread
     *  registrations). */
    void clear();

    /** Copy of every buffered event, sorted by start time.  The
     *  tracer should be quiescent (no spans concurrently closing) for
     *  a complete snapshot; a racing append is safe but may or may
     *  not be included. */
    std::vector<SpanEvent> snapshotEvents() const;

    /**
     * Chrome trace_event JSON ("trace viewer" / Perfetto format):
     * {"traceEvents": [...], "displayTimeUnit": "ms"} with one
     * ph:"X" complete event per span (ts/dur in microseconds) plus
     * ph:"M" thread_name metadata per thread.
     */
    std::string traceEventJson() const;

    /** Write traceEventJson() to @p path; false on I/O failure. */
    bool writeJson(const std::string &path) const;

    /**
     * Profile buckets merged across every thread (same path on two
     * threads folds into one bucket), sorted by path.  Exact for the
     * whole run: unlike snapshotEvents(), ring eviction never loses
     * profile counts.  Spans still open are not yet counted.
     */
    std::vector<ProfileBucket> snapshotProfile() const;

    /** Profile export: {"schema_version": 1, "spans": [{"path",
     *  "name", "count", "incl_ns", "self_ns"}...]} sorted by path —
     *  the format tools/eval_prof and the shard fleet merge consume
     *  (DESIGN.md Sec 5j). */
    std::string profileJson() const;

    /** Write profileJson() to @p path; false on I/O failure. */
    bool writeProfileJson(const std::string &path) const;

    /** Total self ns per span NAME (buckets with the same leaf name
     *  under different parents fold together), sorted by self time
     *  descending then name.  Feeds the compact `span_self_ms` bench
     *  footer. */
    std::vector<std::pair<std::string, std::uint64_t>>
    selfTimeByName() const;

    /** Innermost open span name on the calling thread ("" if none). */
    static const char *currentSpanName();
};

namespace trace_detail {

/** Tracer-internal span open/close (the raw handle API wrapped by
 *  ScopedSpan).  Outside src/trace the obs-span-leak lint rule bans
 *  these: use ScopedSpan.  beginSpanImpl pushes the open-span frame
 *  (building the parent-path key once, at open); endSpanImpl pops it,
 *  attributes self time to the closing span and inclusive time to its
 *  parent's child accumulator, and folds the profile bucket. */
std::uint64_t beginSpanImpl(const char *name);
void endSpanImpl(const char *name, std::uint64_t startNs,
                 std::vector<std::pair<std::string, std::string>> &&args);
bool tracingEnabled();

} // namespace trace_detail

/**
 * RAII span: records one complete event from construction to
 * destruction when tracing is enabled, and is a single relaxed
 * atomic load when disabled.  Deliberately immovable and
 * uncopyable — a span IS its scope (see obs-span-leak).
 *
 *     ScopedSpan span("optimizer.choose");
 *     span.arg("subsystems", n);
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
        : name_(trace_detail::tracingEnabled() ? name : nullptr)
    {
        if (name_)
            start_ = trace_detail::beginSpanImpl(name_);
    }

    /** Sampled span for hot paths: records only when @p sample is
     *  true (callers typically pass a 1-in-N tick so per-access
     *  regions stay within the overhead budget — DESIGN.md Sec 5e).
     *  When false this is exactly the disabled-tracer path. */
    ScopedSpan(const char *name, bool sample)
        : name_(sample && trace_detail::tracingEnabled() ? name
                                                         : nullptr)
    {
        if (name_)
            start_ = trace_detail::beginSpanImpl(name_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
    ScopedSpan(ScopedSpan &&) = delete;
    ScopedSpan &operator=(ScopedSpan &&) = delete;

    ~ScopedSpan()
    {
        if (name_)
            trace_detail::endSpanImpl(name_, start_, std::move(args_));
    }

    /** Attach a key/value arg (no-op when the tracer was disabled at
     *  construction).  Numbers render raw, strings render quoted. */
    void arg(const char *key, double value);
    void arg(const char *key, bool value);
    void arg(const char *key, const std::string &value);
    void arg(const char *key, const char *value);
    /** Any integer type (int, std::size_t, std::uint64_t, ...);
     *  a template so platform-dependent typedef aliasing cannot
     *  create duplicate overloads. */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    void arg(const char *key, T value)
    {
        if constexpr (std::is_signed_v<T>)
            argSigned(key, static_cast<long long>(value));
        else
            argUnsigned(key,
                        static_cast<unsigned long long>(value));
    }

  private:
    void argSigned(const char *key, long long value);
    void argUnsigned(const char *key, unsigned long long value);

    const char *name_;        ///< nullptr = tracing was disabled
    std::uint64_t start_ = 0;
    std::vector<std::pair<std::string, std::string>> args_;
};

} // namespace eval
