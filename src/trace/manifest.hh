/**
 * @file
 * Run provenance manifest: every eval_cli / bench run can write one
 * `manifest.json` describing exactly what ran — git SHA, build
 * type/compiler/flags, sanitizer mode, seed, thread count, a hash of
 * the experiment configuration, per-stage wall times, peak RSS, and
 * the paths of every telemetry artifact the run produced.  A bench
 * number without its manifest is unreproducible; benchtrack
 * (tools/benchtrack) and humans both start from this file.
 *
 * Schema (stable member order, schema_version bumps on change; the
 * golden test tests/golden/manifest_schema_test.cpp pins it):
 *
 *   {
 *     "schema_version": 1,
 *     "tool": "bench_microbench",
 *     "git_sha": "abc123...",
 *     "build": {"type": ..., "compiler": ..., "flags": ...,
 *               "sanitizer": ...},
 *     "run": {"seed": 1, "threads": 8,
 *             "config_hash": "0x...", "config": "<fingerprint>"},
 *     "stages": [{"name": "sweep", "wall_s": 1.234}, ...],
 *     "outputs": {"stats": "...", ...},     // only paths actually set
 *     "peak_rss_kb": 123456
 *   }
 *
 * Build identity comes from compile definitions baked in by
 * src/trace/CMakeLists.txt at configure time (the SHA is the
 * configure-time HEAD; a stale value means "reconfigure", which CI
 * always does from scratch).
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eval {

/** Configure-time build identity (see CMakeLists definitions). */
const char *buildGitSha();
const char *buildType();
const char *buildCompiler();
const char *buildFlags();
const char *buildSanitizer();

/** Peak resident set size of this process so far, in KiB (Linux
 *  getrusage ru_maxrss; 0 if unavailable). */
long peakRssKb();

/** FNV-1a over a byte string (config fingerprints, cache keys). */
std::uint64_t fnv1a(const std::string &bytes);

/**
 * The manifest under construction for this process.  Writers fill it
 * as the run progresses; write() serializes the schema above.  All
 * methods are thread-safe (a parallel bench may add stages from the
 * submitting thread while workers run).
 */
class RunManifest
{
  public:
    static RunManifest &global();

    void setTool(const std::string &name);
    void setSeed(std::uint64_t seed);
    void setThreads(std::size_t threads);

    /** Record the experiment-config fingerprint; the manifest stores
     *  both the string and its FNV-1a hash. */
    void setConfig(const std::string &fingerprint);

    /** Append one completed stage and its wall-clock seconds. */
    void addStage(const std::string &name, double wallS);

    /** Record a telemetry artifact this run wrote ("stats",
     *  "decision_trace", "trace_spans", "bench_json", ...). */
    void setOutput(const std::string &key, const std::string &path);

    std::string json() const;
    bool write(const std::string &path) const;

    /** Forget everything set so far (tests). */
    void reset();

  private:
    RunManifest() = default;
};

} // namespace eval
