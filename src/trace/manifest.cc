#include "trace/manifest.hh"

#include <cstdio>
#include <mutex>

#include <sys/resource.h>

#ifndef EVAL_BUILD_GIT_SHA
#define EVAL_BUILD_GIT_SHA "unknown"
#endif
#ifndef EVAL_BUILD_TYPE
#define EVAL_BUILD_TYPE "unknown"
#endif
#ifndef EVAL_BUILD_COMPILER
#define EVAL_BUILD_COMPILER "unknown"
#endif
#ifndef EVAL_BUILD_FLAGS
#define EVAL_BUILD_FLAGS ""
#endif
#ifndef EVAL_BUILD_SANITIZER
#define EVAL_BUILD_SANITIZER "none"
#endif

namespace eval {

const char *buildGitSha() { return EVAL_BUILD_GIT_SHA; }
const char *buildType() { return EVAL_BUILD_TYPE; }
const char *buildCompiler() { return EVAL_BUILD_COMPILER; }
const char *buildFlags() { return EVAL_BUILD_FLAGS; }
const char *buildSanitizer() { return EVAL_BUILD_SANITIZER; }

long
peakRssKb()
{
    // The shard supervisor does its real work in forked workers, so
    // RUSAGE_SELF alone would report the (tiny) supervisor footprint.
    // RUSAGE_CHILDREN folds in the peak of every reaped child; the
    // max of the two is the fleet's true high-water mark either way.
    long peak = 0;
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0)
        peak = ru.ru_maxrss; // Linux: KiB
    if (getrusage(RUSAGE_CHILDREN, &ru) == 0 && ru.ru_maxrss > peak)
        peak = ru.ru_maxrss;
    return peak;
}

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

struct ManifestState
{
    std::mutex m;
    std::string tool = "unknown";
    std::uint64_t seed = 0;
    std::size_t threads = 1;
    std::string config;
    std::vector<std::pair<std::string, double>> stages;
    std::vector<std::pair<std::string, std::string>> outputs;
};

ManifestState &
state()
{
    static ManifestState *s = new ManifestState; // usable during exit
    return *s;
}

void
jsonEscapeInto(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    jsonEscapeInto(out, s);
    out += "\"";
    return out;
}

} // namespace

RunManifest &
RunManifest::global()
{
    static RunManifest manifest;
    return manifest;
}

void
RunManifest::setTool(const std::string &name)
{
    std::lock_guard<std::mutex> lock(state().m);
    state().tool = name;
}

void
RunManifest::setSeed(std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(state().m);
    state().seed = seed;
}

void
RunManifest::setThreads(std::size_t threads)
{
    std::lock_guard<std::mutex> lock(state().m);
    state().threads = threads;
}

void
RunManifest::setConfig(const std::string &fingerprint)
{
    std::lock_guard<std::mutex> lock(state().m);
    state().config = fingerprint;
}

void
RunManifest::addStage(const std::string &name, double wallS)
{
    std::lock_guard<std::mutex> lock(state().m);
    state().stages.emplace_back(name, wallS);
}

void
RunManifest::setOutput(const std::string &key, const std::string &path)
{
    std::lock_guard<std::mutex> lock(state().m);
    for (auto &kv : state().outputs) {
        if (kv.first == key) {
            kv.second = path;
            return;
        }
    }
    state().outputs.emplace_back(key, path);
}

std::string
RunManifest::json() const
{
    ManifestState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    char buf[64];

    std::string out = "{\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"tool\": " + quoted(s.tool) + ",\n";
    out += "  \"git_sha\": " + quoted(buildGitSha()) + ",\n";
    out += "  \"build\": {\"type\": " + quoted(buildType()) +
           ", \"compiler\": " + quoted(buildCompiler()) +
           ", \"flags\": " + quoted(buildFlags()) +
           ", \"sanitizer\": " + quoted(buildSanitizer()) + "},\n";
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(fnv1a(s.config)));
    out += "  \"run\": {\"seed\": " + std::to_string(s.seed) +
           ", \"threads\": " + std::to_string(s.threads) +
           ", \"config_hash\": " + quoted(buf) +
           ", \"config\": " + quoted(s.config) + "},\n";
    out += "  \"stages\": [";
    for (std::size_t i = 0; i < s.stages.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%.6f", s.stages[i].second);
        out += (i ? ", {" : "{");
        out += "\"name\": " + quoted(s.stages[i].first) +
               ", \"wall_s\": " + buf + "}";
    }
    out += "],\n";
    out += "  \"outputs\": {";
    for (std::size_t i = 0; i < s.outputs.size(); ++i) {
        out += (i ? ", " : "");
        out += quoted(s.outputs[i].first) + ": " +
               quoted(s.outputs[i].second);
    }
    out += "},\n";
    out += "  \"peak_rss_kb\": " + std::to_string(peakRssKb()) + "\n";
    out += "}\n";
    return out;
}

bool
RunManifest::write(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string text = json();
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool closed = std::fclose(f) == 0;
    return written == text.size() && closed;
}

void
RunManifest::reset()
{
    ManifestState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    s.tool = "unknown";
    s.seed = 0;
    s.threads = 1;
    s.config.clear();
    s.stages.clear();
    s.outputs.clear();
}

} // namespace eval
