/**
 * @file
 * Alternative learned controllers, for the Appendix A comparison: the
 * paper argues fuzzy controllers beat perceptrons (which cannot model
 * outputs that are non-linear in the inputs) and table/tree approaches
 * (which need more states and memory).  These baselines let the claim
 * be measured (bench_ablation_controllers).
 *
 * Both operate in normalized coordinates like FuzzyController and are
 * trained online, one example at a time.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eval {

/** Common interface for online-trained scalar regressors. */
class Regressor
{
  public:
    virtual ~Regressor() = default;

    /** Present one training example (normalized input, output). */
    virtual void train(const std::vector<double> &x, double y) = 0;

    /** Predict the output for a normalized input. */
    virtual double predict(const std::vector<double> &x) const = 0;

    /** Approximate state size in bytes. */
    virtual std::size_t footprintBytes() const = 0;
};

/**
 * Linear perceptron with bias, trained by stochastic gradient descent.
 * The cheapest option — and exactly as limited as Appendix A says:
 * it can only represent outputs linear in the inputs.
 */
class PerceptronRegressor : public Regressor
{
  public:
    PerceptronRegressor(std::size_t numInputs, double learningRate = 0.05);

    void train(const std::vector<double> &x, double y) override;
    double predict(const std::vector<double> &x) const override;
    std::size_t footprintBytes() const override;

  private:
    double learningRate_;
    std::vector<double> weights_;   ///< last element is the bias
};

/**
 * Quantized-table regressor: the input cube is split into bins per
 * dimension; each cell keeps a running mean of the outputs that landed
 * in it.  Queries fall back to the global mean for untouched cells.
 * Represents the decision-tree/table family Appendix A compares
 * against: accurate only with many cells (= memory) and many examples.
 */
class TableRegressor : public Regressor
{
  public:
    /**
     * @param numInputs   input dimensionality
     * @param binsPerAxis table resolution per dimension (memory grows
     *                    as binsPerAxis^numInputs; capped internally)
     */
    TableRegressor(std::size_t numInputs, std::size_t binsPerAxis);

    void train(const std::vector<double> &x, double y) override;
    double predict(const std::vector<double> &x) const override;
    std::size_t footprintBytes() const override;

    std::size_t cells() const { return sums_.size(); }

  private:
    std::size_t index(const std::vector<double> &x) const;

    std::size_t inputs_;
    std::size_t bins_;
    std::vector<double> sums_;
    std::vector<std::uint32_t> counts_;
    double globalSum_ = 0.0;
    std::uint64_t globalCount_ = 0;
};

} // namespace eval

