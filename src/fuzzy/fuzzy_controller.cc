#include "fuzzy/fuzzy_controller.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

namespace {

constexpr double kMinSigma = 1e-3;

void
saveVector(std::ostream &os, const std::vector<double> &v)
{
    os << v.size();
    os.precision(17);
    for (double x : v)
        os << ' ' << x;
    os << '\n';
}

std::vector<double>
loadVector(std::istream &is)
{
    std::size_t n = 0;
    is >> n;
    EVAL_ASSERT(is.good() && n < (1u << 24), "corrupt controller image");
    std::vector<double> v(n);
    for (double &x : v)
        is >> x;
    EVAL_ASSERT(is.good(), "truncated controller image");
    return v;
}

} // namespace

void
InputNormalizer::fit(const std::vector<std::vector<double>> &samples)
{
    EVAL_ASSERT(!samples.empty(), "normalizer needs samples");
    const std::size_t dims = samples.front().size();
    lo_.assign(dims, std::numeric_limits<double>::infinity());
    hi_.assign(dims, -std::numeric_limits<double>::infinity());
    for (const auto &s : samples) {
        EVAL_ASSERT(s.size() == dims, "inconsistent sample dims");
        for (std::size_t j = 0; j < dims; ++j) {
            lo_[j] = std::min(lo_[j], s[j]);
            hi_[j] = std::max(hi_[j], s[j]);
        }
    }
}

void
InputNormalizer::fitScalar(const std::vector<double> &samples)
{
    EVAL_ASSERT(!samples.empty(), "normalizer needs samples");
    lo_.assign(1, *std::min_element(samples.begin(), samples.end()));
    hi_.assign(1, *std::max_element(samples.begin(), samples.end()));
}

std::vector<double>
InputNormalizer::normalize(const std::vector<double> &raw) const
{
    EVAL_ASSERT(raw.size() == lo_.size(), "dimension mismatch");
    std::vector<double> out(raw.size());
    for (std::size_t j = 0; j < raw.size(); ++j) {
        const double span = hi_[j] - lo_[j];
        out[j] = span > 0.0 ? (raw[j] - lo_[j]) / span : 0.5;
    }
    return out;
}

double
InputNormalizer::normalizeScalar(double raw) const
{
    EVAL_ASSERT(lo_.size() == 1, "scalar normalizer expected");
    const double span = hi_[0] - lo_[0];
    return span > 0.0 ? (raw - lo_[0]) / span : 0.5;
}

double
InputNormalizer::denormalizeScalar(double normalized) const
{
    EVAL_ASSERT(lo_.size() == 1, "scalar normalizer expected");
    return lo_[0] + normalized * (hi_[0] - lo_[0]);
}

FuzzyController::FuzzyController(std::size_t numRules,
                                 std::size_t numInputs)
    : rules_(numRules), inputs_(numInputs),
      mu_(numRules * numInputs, 0.0),
      sigma_(numRules * numInputs, 0.05),
      y_(numRules, 0.0)
{
    EVAL_ASSERT(numRules > 0 && numInputs > 0, "controller shape");
}

double
FuzzyController::membership(std::size_t rule,
                            const std::vector<double> &x) const
{
    // Eq 10/11: product of Gaussian memberships, computed in log space
    // for numerical robustness.
    double logW = 0.0;
    const std::size_t base = rule * inputs_;
    for (std::size_t j = 0; j < inputs_; ++j) {
        const double d = (x[j] - mu_[base + j]) / sigma_[base + j];
        logW -= d * d;
    }
    return std::exp(logW);
}

double
FuzzyController::infer(const std::vector<double> &x) const
{
    EVAL_ASSERT(x.size() == inputs_, "input dimension mismatch");
    const std::size_t active = std::max<std::size_t>(seeded_, 1);

    double num = 0.0;
    double den = 0.0;
    double bestW = -1.0;
    double bestY = y_[0];
    for (std::size_t i = 0; i < active && i < rules_; ++i) {
        const double w = membership(i, x);
        num += w * y_[i];
        den += w;
        if (w > bestW) {
            bestW = w;
            bestY = y_[i];
        }
    }
    if (den <= 1e-290)
        return bestY;   // far outside support: nearest rule wins
    return num / den;   // Eq 12
}

void
FuzzyController::train(const std::vector<double> &x, double y,
                       double learningRate, Rng &rng)
{
    EVAL_ASSERT(x.size() == inputs_, "input dimension mismatch");

    if (seeded_ < rules_) {
        const std::size_t base = seeded_ * inputs_;
        for (std::size_t j = 0; j < inputs_; ++j) {
            mu_[base + j] = x[j];
            sigma_[base + j] = std::max(kMinSigma,
                                        rng.uniform(0.02, 0.1));
        }
        y_[seeded_] = y;
        ++seeded_;
        return;
    }

    // Gradient step (Eq 13) on e = (y - z)^2 for every rule.
    std::vector<double> w(rules_);
    double den = 0.0;
    double num = 0.0;
    for (std::size_t i = 0; i < rules_; ++i) {
        w[i] = membership(i, x);
        den += w[i];
        num += w[i] * y_[i];
    }
    if (den <= 1e-290)
        return;   // no rule is responsible; skip the example
    const double z = num / den;
    const double err = y - z;   // d(e)/dz = -2 err

    for (std::size_t i = 0; i < rules_; ++i) {
        const double dzdW = (y_[i] - z) / den;
        const double base = 2.0 * err;
        const std::size_t rowBase = i * inputs_;

        // y update: dz/dy_i = w_i / den.
        y_[i] += learningRate * base * (w[i] / den);

        for (std::size_t j = 0; j < inputs_; ++j) {
            const double mu = mu_[rowBase + j];
            const double sg = sigma_[rowBase + j];
            const double diff = x[j] - mu;
            const double dWdMu = w[i] * 2.0 * diff / (sg * sg);
            const double dWdSigma =
                w[i] * 2.0 * diff * diff / (sg * sg * sg);
            mu_[rowBase + j] += learningRate * base * dzdW * dWdMu;
            sigma_[rowBase + j] += learningRate * base * dzdW * dWdSigma;
            sigma_[rowBase + j] =
                clamp(sigma_[rowBase + j], kMinSigma, 10.0);
        }
    }
}

std::size_t
FuzzyController::footprintBytes() const
{
    return sizeof(double) * (mu_.size() + sigma_.size() + y_.size());
}

void
InputNormalizer::save(std::ostream &os) const
{
    saveVector(os, lo_);
    saveVector(os, hi_);
}

InputNormalizer
InputNormalizer::load(std::istream &is)
{
    InputNormalizer n;
    n.lo_ = loadVector(is);
    n.hi_ = loadVector(is);
    EVAL_ASSERT(n.lo_.size() == n.hi_.size(),
                "corrupt normalizer image");
    return n;
}

void
FuzzyController::save(std::ostream &os) const
{
    os << "fc " << rules_ << ' ' << inputs_ << ' ' << seeded_ << '\n';
    saveVector(os, mu_);
    saveVector(os, sigma_);
    saveVector(os, y_);
}

FuzzyController
FuzzyController::load(std::istream &is)
{
    std::string tag;
    std::size_t rules = 0, inputs = 0, seeded = 0;
    is >> tag >> rules >> inputs >> seeded;
    EVAL_ASSERT(is.good() && tag == "fc", "not a controller image");
    FuzzyController fc(rules, inputs);
    fc.seeded_ = seeded;
    fc.mu_ = loadVector(is);
    fc.sigma_ = loadVector(is);
    fc.y_ = loadVector(is);
    EVAL_ASSERT(fc.mu_.size() == rules * inputs &&
                    fc.sigma_.size() == rules * inputs &&
                    fc.y_.size() == rules,
                "controller image shape mismatch");
    return fc;
}

TrainedController::TrainedController(std::size_t numRules,
                                     std::size_t numInputs)
    : fc_(numRules, numInputs)
{
}

void
TrainedController::train(const std::vector<std::vector<double>> &inputs,
                         const std::vector<double> &outputs,
                         double learningRate, Rng &rng)
{
    EVAL_ASSERT(inputs.size() == outputs.size() && !inputs.empty(),
                "dataset shape mismatch");
    inputNorm_.fit(inputs);
    outputNorm_.fitScalar(outputs);

    for (std::size_t k = 0; k < inputs.size(); ++k) {
        fc_.train(inputNorm_.normalize(inputs[k]),
                  outputNorm_.normalizeScalar(outputs[k]), learningRate,
                  rng);
    }
    trained_ = true;
}

double
TrainedController::predict(const std::vector<double> &rawInput) const
{
    EVAL_ASSERT(trained_, "controller used before training");
    const double z = fc_.infer(inputNorm_.normalize(rawInput));
    return outputNorm_.denormalizeScalar(z);
}

void
TrainedController::save(std::ostream &os) const
{
    EVAL_ASSERT(trained_, "cannot save an untrained controller");
    fc_.save(os);
    inputNorm_.save(os);
    outputNorm_.save(os);
}

TrainedController
TrainedController::load(std::istream &is)
{
    FuzzyController fc = FuzzyController::load(is);
    TrainedController tc(fc.numRules(), fc.numInputs());
    tc.fc_ = std::move(fc);
    tc.inputNorm_ = InputNormalizer::load(is);
    tc.outputNorm_ = InputNormalizer::load(is);
    tc.trained_ = true;
    return tc;
}

} // namespace eval
