#include "fuzzy/regressors.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

PerceptronRegressor::PerceptronRegressor(std::size_t numInputs,
                                         double learningRate)
    : learningRate_(learningRate), weights_(numInputs + 1, 0.0)
{
    EVAL_ASSERT(numInputs > 0, "perceptron needs inputs");
}

double
PerceptronRegressor::predict(const std::vector<double> &x) const
{
    EVAL_ASSERT(x.size() + 1 == weights_.size(), "dimension mismatch");
    double acc = weights_.back();
    for (std::size_t j = 0; j < x.size(); ++j)
        acc += weights_[j] * x[j];
    return acc;
}

void
PerceptronRegressor::train(const std::vector<double> &x, double y)
{
    const double err = y - predict(x);
    for (std::size_t j = 0; j < x.size(); ++j)
        weights_[j] += learningRate_ * err * x[j];
    weights_.back() += learningRate_ * err;
}

std::size_t
PerceptronRegressor::footprintBytes() const
{
    return weights_.size() * sizeof(double);
}

TableRegressor::TableRegressor(std::size_t numInputs,
                               std::size_t binsPerAxis)
    : inputs_(numInputs), bins_(binsPerAxis)
{
    EVAL_ASSERT(numInputs > 0 && binsPerAxis > 0, "table shape");
    // Cap the table at 2^22 cells; beyond that reduce the resolution
    // (the memory blow-up is exactly the point of the comparison).
    double cells = 1.0;
    for (std::size_t j = 0; j < inputs_; ++j)
        cells *= static_cast<double>(bins_);
    while (cells > (1 << 22) && bins_ > 1) {
        --bins_;
        cells = std::pow(static_cast<double>(bins_),
                         static_cast<double>(inputs_));
    }
    const auto total = static_cast<std::size_t>(cells);
    sums_.assign(total, 0.0);
    counts_.assign(total, 0);
}

std::size_t
TableRegressor::index(const std::vector<double> &x) const
{
    EVAL_ASSERT(x.size() == inputs_, "dimension mismatch");
    std::size_t idx = 0;
    for (std::size_t j = 0; j < inputs_; ++j) {
        const double t = clamp(x[j], 0.0, 1.0 - 1e-12);
        idx = idx * bins_ +
              static_cast<std::size_t>(t * static_cast<double>(bins_));
    }
    return idx;
}

void
TableRegressor::train(const std::vector<double> &x, double y)
{
    const std::size_t idx = index(x);
    sums_[idx] += y;
    ++counts_[idx];
    globalSum_ += y;
    ++globalCount_;
}

double
TableRegressor::predict(const std::vector<double> &x) const
{
    const std::size_t idx = index(x);
    if (counts_[idx] > 0)
        return sums_[idx] / counts_[idx];
    return globalCount_ ? globalSum_ / static_cast<double>(globalCount_)
                        : 0.0;
}

std::size_t
TableRegressor::footprintBytes() const
{
    return sums_.size() * sizeof(double) +
           counts_.size() * sizeof(std::uint32_t);
}

} // namespace eval
