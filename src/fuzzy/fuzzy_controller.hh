/**
 * @file
 * Fuzzy controller (Appendix A of the paper).
 *
 * The controller holds n rules over m input variables: matrices mu and
 * sigma (n x m) and an output vector y.  Deployment (Eqs 10-12):
 *
 *   W_ij = exp(-((x_j - mu_ij) / sigma_ij)^2)
 *   W_i  = prod_j W_ij
 *   z    = sum_i W_i y_i / sum_i W_i
 *
 * Training seeds the first n rules directly from the first n examples
 * (mu_ij = x_ij, sigma_ij random < 0.1, y_i = output), then performs
 * gradient descent on the squared error with learning rate alpha
 * (Eq 13; alpha = 0.04 in the paper).
 *
 * The controller operates in normalized coordinates; InputNormalizer
 * maps raw physical inputs/outputs into [0, 1].
 */

#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/random.hh"

namespace eval {

/** Per-dimension affine normalization to [0, 1]. */
class InputNormalizer
{
  public:
    InputNormalizer() = default;

    /** Fit ranges from a set of raw vectors. */
    void fit(const std::vector<std::vector<double>> &samples);

    /** Fit a scalar range. */
    void fitScalar(const std::vector<double> &samples);

    std::vector<double> normalize(const std::vector<double> &raw) const;
    double normalizeScalar(double raw) const;
    double denormalizeScalar(double normalized) const;

    std::size_t dims() const { return lo_.size(); }

    /** Plain-text persistence (the reserved-memory image). */
    void save(std::ostream &os) const;
    static InputNormalizer load(std::istream &is);

  private:
    std::vector<double> lo_;
    std::vector<double> hi_;
};

/** The rule-based controller itself (normalized space). */
class FuzzyController
{
  public:
    FuzzyController(std::size_t numRules, std::size_t numInputs);

    /** Eqs 10-12. Falls back to the nearest rule when all memberships
     *  underflow (query far outside the training support). */
    double infer(const std::vector<double> &x) const;

    /**
     * Present one training example.  The first numRules examples seed
     * the rule base; later examples run one Eq 13 gradient step on
     * every rule.
     */
    void train(const std::vector<double> &x, double y,
               double learningRate, Rng &rng);

    bool fullySeeded() const { return seeded_ >= rules_; }
    std::size_t numRules() const { return rules_; }
    std::size_t numInputs() const { return inputs_; }

    /** Approximate data footprint in bytes (paper: ~120 KB total). */
    std::size_t footprintBytes() const;

    /** Plain-text persistence of the rule base. */
    void save(std::ostream &os) const;
    static FuzzyController load(std::istream &is);

  private:
    double membership(std::size_t rule, const std::vector<double> &x) const;

    std::size_t rules_;
    std::size_t inputs_;
    std::size_t seeded_ = 0;
    std::vector<double> mu_;      ///< [rule * inputs + j]
    std::vector<double> sigma_;   ///< [rule * inputs + j]
    std::vector<double> y_;       ///< [rule]
};

/** A trained controller bundled with its raw-unit normalizers. */
class TrainedController
{
  public:
    TrainedController(std::size_t numRules, std::size_t numInputs);

    /**
     * Train on a raw-unit dataset: fits the normalizers, then feeds
     * every example through FuzzyController::train.
     *
     * @param inputs  raw input vectors
     * @param outputs raw outputs (same length)
     * @param learningRate Eq 13 alpha
     * @param rng     sigma-seeding stream
     */
    void train(const std::vector<std::vector<double>> &inputs,
               const std::vector<double> &outputs, double learningRate,
               Rng &rng);

    /** Predict a raw-unit output from a raw-unit input vector. */
    double predict(const std::vector<double> &rawInput) const;

    bool trained() const { return trained_; }
    const FuzzyController &controller() const { return fc_; }

    /**
     * Persist / restore a trained controller (the manufacturer writes
     * the trained rule bases into a reserved memory area that the
     * runtime routines load, Sec 4.3.2).
     */
    void save(std::ostream &os) const;
    static TrainedController load(std::istream &is);

  private:
    FuzzyController fc_;
    InputNormalizer inputNorm_;
    InputNormalizer outputNorm_;
    bool trained_ = false;
};

} // namespace eval

