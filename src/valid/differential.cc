#include "valid/differential.hh"

#include <sstream>

#include "exec/thread_pool.hh"
#include "kernels/thermal_batch.hh"
#include "timing/error_model.hh"
#include "valid/json_value.hh"

namespace eval {

namespace {

/** First few line-level differences between two serialized files. */
std::string
firstDiffs(const GoldenFile &ref, const GoldenFile &run)
{
    const std::vector<MetricDiff> diffs = compareGolden(ref, run);
    std::ostringstream out;
    std::size_t shown = 0;
    for (const MetricDiff &d : diffs) {
        if (shown++ == 5) {
            out << "; ... " << (diffs.size() - 5) << " more";
            break;
        }
        if (shown > 1)
            out << "; ";
        out << d.metric << " " << formatExactDouble(d.expected)
            << " vs " << formatExactDouble(d.actual);
    }
    if (diffs.empty())
        out << "metric values equal but serialization differs";
    return out.str();
}

/** Restores pool size and kernel-toggle settings even on exceptions. */
class ConfigGuard
{
  public:
    ConfigGuard()
        : threads_(globalThreads()), cache_(peCacheEnabled()),
          table_(peTableEnabled()), thermal_(thermalCacheEnabled())
    {
    }

    ~ConfigGuard()
    {
        setGlobalThreads(threads_);
        setPeCacheEnabled(cache_);
        setPeTableEnabled(table_);
        setThermalCacheEnabled(thermal_);
    }

  private:
    std::size_t threads_;
    bool cache_;
    bool table_;
    bool thermal_;
};

} // namespace

bool
DifferentialReport::allIdentical() const
{
    for (const DifferentialCheck &c : checks) {
        if (!c.identical)
            return false;
    }
    return !checks.empty();
}

std::string
DifferentialReport::summary() const
{
    std::ostringstream out;
    out << "differential '" << experiment << "':\n";
    for (const DifferentialCheck &c : checks) {
        out << "  " << c.label << ": "
            << (c.identical ? "bit-identical" : "DIFFERS");
        if (!c.identical && !c.detail.empty())
            out << " (" << c.detail << ")";
        out << "\n";
    }
    return out.str();
}

DifferentialReport
runDifferential(const std::string &experiment,
                const std::vector<std::size_t> &threadCounts,
                const ExperimentTweaks &tweaks)
{
    DifferentialReport report;
    report.experiment = experiment;

    ConfigGuard guard;

    setGlobalThreads(1);
    setPeCacheEnabled(true);
    setPeTableEnabled(false);       // goldens are recorded in exact mode
    setThermalCacheEnabled(true);
    const GoldenFile reference =
        runValidationExperiment(experiment, tweaks);

    const auto check = [&](const std::string &label) {
        const GoldenFile run = runValidationExperiment(experiment, tweaks);
        DifferentialCheck c;
        c.label = label;
        c.identical = compareBitIdentical(reference, run);
        if (!c.identical)
            c.detail = firstDiffs(reference, run);
        report.checks.push_back(std::move(c));
    };

    for (std::size_t t : threadCounts) {
        setGlobalThreads(t);
        check("threads=" + std::to_string(t));
    }

    setGlobalThreads(1);
    setPeCacheEnabled(false);
    check("pe_cache=off");

    setPeCacheEnabled(true);
    setThermalCacheEnabled(false);
    check("thermal_cache=off");

    return report;
}

} // namespace eval
