#include "valid/snapshot.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace eval {

namespace {

constexpr char kMagic[] = "EVALSNAP";
/** Binary container: "EVSB" + one version byte, then the value. */
constexpr char kBinaryMagic[4] = {'E', 'V', 'S', 'B'};
constexpr std::uint8_t kBinaryVersion = 1;

enum BinTag : std::uint8_t {
    TagNull = 0,
    TagFalse = 1,
    TagTrue = 2,
    TagInt = 3,
    TagDouble = 4,
    TagString = 5,
    TagArray = 6,
    TagObject = 7,
};

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
encodeValue(std::string &out, const JsonValue &v)
{
    switch (v.type()) {
      case JsonValue::Type::Null:
        out.push_back(static_cast<char>(TagNull));
        break;
      case JsonValue::Type::Bool:
        out.push_back(
            static_cast<char>(v.asBool() ? TagTrue : TagFalse));
        break;
      case JsonValue::Type::Int:
        out.push_back(static_cast<char>(TagInt));
        putVarint(out, zigzag(v.asInt()));
        break;
      case JsonValue::Type::Double: {
        out.push_back(static_cast<char>(TagDouble));
        const double d = v.asDouble();
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
        break;
      }
      case JsonValue::Type::String:
        out.push_back(static_cast<char>(TagString));
        putVarint(out, v.asString().size());
        out += v.asString();
        break;
      case JsonValue::Type::Array:
        out.push_back(static_cast<char>(TagArray));
        putVarint(out, v.asArray().size());
        for (const JsonValue &e : v.asArray())
            encodeValue(out, e);
        break;
      case JsonValue::Type::Object:
        out.push_back(static_cast<char>(TagObject));
        putVarint(out, v.asObject().size());
        for (const auto &[key, val] : v.asObject()) {
            putVarint(out, key.size());
            out += key;
            encodeValue(out, val);
        }
        break;
    }
}

class BinReader
{
  public:
    explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t
    byte()
    {
        if (pos_ >= bytes_.size())
            throw SnapshotError("binary snapshot truncated");
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            const std::uint8_t b = byte();
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80))
                return v;
        }
        throw SnapshotError("binary snapshot varint overflow");
    }

    std::string
    stringBytes(std::uint64_t n)
    {
        if (n > bytes_.size() - pos_)
            throw SnapshotError("binary snapshot truncated string");
        std::string s(bytes_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    JsonValue
    value(int depth = 0)
    {
        if (depth > 256)
            throw SnapshotError("binary snapshot nesting too deep");
        switch (byte()) {
          case TagNull:
            return JsonValue();
          case TagFalse:
            return JsonValue(false);
          case TagTrue:
            return JsonValue(true);
          case TagInt:
            return JsonValue(unzigzag(varint()));
          case TagDouble: {
            std::uint64_t bits = 0;
            for (int i = 0; i < 8; ++i)
                bits |= static_cast<std::uint64_t>(byte()) << (8 * i);
            double d;
            std::memcpy(&d, &bits, sizeof(d));
            return JsonValue(d);
          }
          case TagString:
            return JsonValue(stringBytes(varint()));
          case TagArray: {
            const std::uint64_t n = varint();
            JsonValue arr = JsonValue::array();
            for (std::uint64_t i = 0; i < n; ++i)
                arr.push(value(depth + 1));
            return arr;
          }
          case TagObject: {
            const std::uint64_t n = varint();
            JsonValue obj = JsonValue::object();
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string key = stringBytes(varint());
                obj.set(key, value(depth + 1));
            }
            return obj;
          }
          default:
            throw SnapshotError("binary snapshot unknown tag");
        }
    }

    bool done() const { return pos_ == bytes_.size(); }

  private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
makeSnapshot(const std::string &kind, std::uint32_t kindVersion,
             JsonValue payload)
{
    JsonValue snap = JsonValue::object();
    snap.set("magic", kMagic);
    snap.set("format_version",
             static_cast<std::int64_t>(kSnapshotFormatVersion));
    snap.set("kind", kind);
    snap.set("kind_version", static_cast<std::int64_t>(kindVersion));
    snap.set("payload", std::move(payload));
    return snap;
}

const JsonValue &
snapshotPayload(const JsonValue &snapshot, const std::string &expectKind,
                std::uint32_t expectKindVersion)
{
    // JsonValue's accessors throw plain runtime_errors on a missing
    // member or a type mismatch; a corrupted envelope (the checkpoint
    // fuzzer flips single bytes into exactly these shapes) must still
    // surface as SnapshotError per this module's contract.
    try {
        if (snapshot.type() != JsonValue::Type::Object)
            throw SnapshotError("snapshot is not an object");
        if (!snapshot.has("magic") ||
            snapshot.at("magic").asString() != kMagic)
            throw SnapshotError("snapshot magic mismatch");
        const auto fmt = static_cast<std::uint32_t>(
            snapshot.at("format_version").asInt());
        if (fmt != kSnapshotFormatVersion) {
            throw SnapshotError(
                "snapshot format version " + std::to_string(fmt) +
                " != supported " +
                std::to_string(kSnapshotFormatVersion));
        }
        const std::string &kind = snapshot.at("kind").asString();
        if (kind != expectKind) {
            throw SnapshotError("snapshot kind '" + kind +
                                "' != expected '" + expectKind + "'");
        }
        const auto kv = static_cast<std::uint32_t>(
            snapshot.at("kind_version").asInt());
        if (kv != expectKindVersion) {
            throw SnapshotError(
                "snapshot kind version " + std::to_string(kv) +
                " != expected " + std::to_string(expectKindVersion) +
                " for '" + kind + "'");
        }
        return snapshot.at("payload");
    } catch (const SnapshotError &) {
        throw;
    } catch (const std::exception &e) {
        throw SnapshotError(std::string("snapshot envelope malformed: ") +
                            e.what());
    }
}

std::string
encodeBinary(const JsonValue &value)
{
    std::string out(kBinaryMagic, sizeof(kBinaryMagic));
    out.push_back(static_cast<char>(kBinaryVersion));
    encodeValue(out, value);
    return out;
}

JsonValue
decodeBinary(std::string_view bytes)
{
    if (bytes.size() < sizeof(kBinaryMagic) + 1 ||
        std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) !=
            0)
        throw SnapshotError("not a binary snapshot (magic mismatch)");
    const auto version =
        static_cast<std::uint8_t>(bytes[sizeof(kBinaryMagic)]);
    if (version != kBinaryVersion) {
        throw SnapshotError("binary snapshot version " +
                            std::to_string(version) + " != supported " +
                            std::to_string(kBinaryVersion));
    }
    BinReader reader(bytes.substr(sizeof(kBinaryMagic) + 1));
    JsonValue v = reader.value();
    if (!reader.done())
        throw SnapshotError("trailing bytes after binary snapshot");
    return v;
}

bool
writeSnapshotFile(const std::string &path, const JsonValue &snapshot,
                  bool binary)
{
    std::ofstream out(path, binary ? std::ios::binary | std::ios::trunc
                                   : std::ios::trunc);
    if (!out) {
        warn("cannot open snapshot file for writing: ", path);
        return false;
    }
    const std::string bytes =
        binary ? encodeBinary(snapshot) : snapshot.dump(2);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
        warn("snapshot write failed: ", path);
        return false;
    }
    return true;
}

JsonValue
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot open snapshot file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    if (bytes.size() >= 4 && std::memcmp(bytes.data(), "EVSB", 4) == 0)
        return decodeBinary(bytes);
    try {
        return JsonValue::parse(bytes);
    } catch (const JsonParseError &e) {
        throw SnapshotError("snapshot file " + path +
                            " is neither binary nor JSON: " + e.what());
    }
}

std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

double
digest53(std::string_view bytes)
{
    return static_cast<double>(fnv1a(bytes) & ((1ULL << 53) - 1));
}

} // namespace eval
