/**
 * @file
 * Shard checkpoint schema (v2) on top of the snapshot envelope.
 *
 * A shard worker persists its progress as a "shard_checkpoint"
 * snapshot: the campaign fingerprint, the shard coordinates, the
 * resume cursor (nextChip), and the serialized accumulator payload.
 * Version 2 of the kind adds an integrity digest over the
 * binary-encoded accumulator payload, checked on read, so a torn or
 * bit-flipped checkpoint is rejected with a SnapshotError instead of
 * silently resuming from corrupt statistics.  (Version 1 was the bare
 * envelope without the digest and is refused loudly by the envelope's
 * kind-version check.)
 *
 * Writes go through a temp-file + rename so a SIGKILL mid-write can
 * never leave a half-written checkpoint under the final name — the
 * property the checkpoint_resume test and the `check.sh
 * --shard-smoke` SIGKILL drill rely on.
 */

#pragma once

#include <cstdint>
#include <string>

#include "valid/json_value.hh"

namespace eval {

/** Kind version of "shard_checkpoint" payloads (v2: integrity
 *  digest + resume cursor). */
constexpr std::uint32_t kShardCheckpointVersion = 2;

/** Progress of one shard worker at a block boundary. */
struct ShardCheckpoint
{
    /** CampaignConfig::fingerprint() of the producing run; resume
     *  refuses a checkpoint from a different campaign. */
    std::string campaignFingerprint;
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 1;
    std::uint64_t rangeBegin = 0; ///< first chip id of this shard
    std::uint64_t rangeEnd = 0;   ///< one past the last chip id
    std::uint64_t nextChip = 0;   ///< resume cursor in [begin, end]
    /** Serialized CampaignAccumulator payload covering
     *  [rangeBegin, nextChip). */
    JsonValue accumulator;
};

/** Wrap @p cp in a "shard_checkpoint" v2 envelope (computes the
 *  integrity digest). */
JsonValue toSnapshot(const ShardCheckpoint &cp);

/** Unwrap and validate; throws SnapshotError on version skew, a
 *  malformed payload, an out-of-range cursor, or a digest mismatch. */
ShardCheckpoint checkpointFromSnapshot(const JsonValue &snapshot);

/**
 * Atomic write (temp file in the same directory + rename).  Returns
 * false with a warn on IO failure, mirroring writeSnapshotFile.
 */
bool writeCheckpointFile(const std::string &path,
                         const ShardCheckpoint &cp, bool binary);

/** Read + validate a checkpoint file; throws SnapshotError (with the
 *  offending path in the message) on any corruption. */
ShardCheckpoint readCheckpointFile(const std::string &path);

} // namespace eval
