#include "valid/serializers.hh"

#include <memory>
#include <utility>

namespace eval {

namespace {

constexpr std::uint32_t kVariationMapVersion = 1;
constexpr std::uint32_t kChipVersion = 1;
constexpr std::uint32_t kCharacterizationVersion = 1;
constexpr std::uint32_t kAdaptationResultVersion = 1;

JsonValue
doubleArray(const std::vector<double> &xs)
{
    JsonValue arr = JsonValue::array();
    for (double x : xs)
        arr.push(x);
    return arr;
}

std::vector<double>
doubleVector(const JsonValue &v)
{
    std::vector<double> out;
    out.reserve(v.asArray().size());
    for (const JsonValue &e : v.asArray())
        out.push_back(e.asDouble());
    return out;
}

template <std::size_t N>
JsonValue
doubleArray(const std::array<double, N> &xs)
{
    JsonValue arr = JsonValue::array();
    for (double x : xs)
        arr.push(x);
    return arr;
}

template <std::size_t N>
std::array<double, N>
fixedArray(const JsonValue &v)
{
    if (v.asArray().size() != N)
        throw SnapshotError("array size " +
                            std::to_string(v.asArray().size()) +
                            " != expected " + std::to_string(N));
    std::array<double, N> out{};
    for (std::size_t i = 0; i < N; ++i)
        out[i] = v.asArray()[i].asDouble();
    return out;
}

JsonValue
toJson(const PerfInputs &in)
{
    JsonValue o = JsonValue::object();
    o.set("cpi_comp", in.cpiComp);
    o.set("misses_per_inst", in.missesPerInst);
    o.set("mem_penalty_sec", in.memPenaltySec);
    o.set("recovery_penalty_cycles", in.recoveryPenaltyCycles);
    return o;
}

PerfInputs
perfInputsFromJson(const JsonValue &v)
{
    PerfInputs in;
    in.cpiComp = v.at("cpi_comp").asDouble();
    in.missesPerInst = v.at("misses_per_inst").asDouble();
    in.memPenaltySec = v.at("mem_penalty_sec").asDouble();
    in.recoveryPenaltyCycles =
        v.at("recovery_penalty_cycles").asDouble();
    return in;
}

JsonValue
toJson(const ActivityVector &act)
{
    JsonValue o = JsonValue::object();
    o.set("alpha", doubleArray(act.alpha));
    o.set("rho", doubleArray(act.rho));
    return o;
}

ActivityVector
activityVectorFromJson(const JsonValue &v)
{
    ActivityVector act;
    act.alpha = fixedArray<kNumSubsystems>(v.at("alpha"));
    act.rho = fixedArray<kNumSubsystems>(v.at("rho"));
    return act;
}

JsonValue
toJson(const PhaseCharacterization &chr)
{
    JsonValue o = JsonValue::object();
    o.set("is_fp", chr.isFp);
    o.set("activity", toJson(chr.act));
    o.set("perf_full", toJson(chr.perfFull));
    o.set("perf_small", toJson(chr.perfSmall));
    return o;
}

PhaseCharacterization
phaseCharacterizationFromJson(const JsonValue &v)
{
    PhaseCharacterization chr;
    chr.isFp = v.at("is_fp").asBool();
    chr.act = activityVectorFromJson(v.at("activity"));
    chr.perfFull = perfInputsFromJson(v.at("perf_full"));
    chr.perfSmall = perfInputsFromJson(v.at("perf_small"));
    return chr;
}

} // namespace

JsonValue
toJson(const Rng::State &state)
{
    JsonValue o = JsonValue::object();
    JsonValue words = JsonValue::array();
    for (std::uint64_t w : state.words)
        words.push(w);
    o.set("words", std::move(words));
    o.set("cached_gaussian", state.cachedGaussian);
    o.set("has_cached_gaussian", state.hasCachedGaussian);
    return o;
}

Rng::State
rngStateFromJson(const JsonValue &v)
{
    Rng::State s;
    const auto &words = v.at("words").asArray();
    if (words.size() != s.words.size())
        throw SnapshotError("rng state must hold 4 words");
    for (std::size_t i = 0; i < s.words.size(); ++i)
        s.words[i] = words[i].asUint();
    s.cachedGaussian = v.at("cached_gaussian").asDouble();
    s.hasCachedGaussian = v.at("has_cached_gaussian").asBool();
    return s;
}

JsonValue
toJson(const ProcessParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("vdd_nominal", p.vddNominal);
    o.set("freq_nominal", p.freqNominal);
    o.set("temp_nominal_c", p.tempNominalC);
    o.set("vt_mean", p.vtMean);
    o.set("vt_ref_temp_c", p.vtRefTempC);
    o.set("vt_sigma_over_mu", p.vtSigmaOverMu);
    o.set("vt_systematic_share", p.vtSystematicShare);
    o.set("leff_mean", p.leffMean);
    o.set("leff_sigma_ratio", p.leffSigmaRatio);
    o.set("leff_systematic_share", p.leffSystematicShare);
    o.set("vt_leff_correlation", p.vtLeffCorrelation);
    o.set("phi", p.phi);
    o.set("grid_size", p.gridSize);
    o.set("alpha_power", p.alphaPower);
    o.set("mobility_temp_exponent", p.mobilityTempExponent);
    o.set("delay_variation_gain", p.delayVariationGain);
    o.set("vdd_droop_guardband", p.vddDroopGuardband);
    o.set("k1", p.k1);
    o.set("k2", p.k2);
    o.set("k3", p.k3);
    return o;
}

ProcessParams
processParamsFromJson(const JsonValue &v)
{
    ProcessParams p;
    p.vddNominal = v.at("vdd_nominal").asDouble();
    p.freqNominal = v.at("freq_nominal").asDouble();
    p.tempNominalC = v.at("temp_nominal_c").asDouble();
    p.vtMean = v.at("vt_mean").asDouble();
    p.vtRefTempC = v.at("vt_ref_temp_c").asDouble();
    p.vtSigmaOverMu = v.at("vt_sigma_over_mu").asDouble();
    p.vtSystematicShare = v.at("vt_systematic_share").asDouble();
    p.leffMean = v.at("leff_mean").asDouble();
    p.leffSigmaRatio = v.at("leff_sigma_ratio").asDouble();
    p.leffSystematicShare = v.at("leff_systematic_share").asDouble();
    p.vtLeffCorrelation = v.at("vt_leff_correlation").asDouble();
    p.phi = v.at("phi").asDouble();
    p.gridSize =
        static_cast<std::size_t>(v.at("grid_size").asInt());
    p.alphaPower = v.at("alpha_power").asDouble();
    p.mobilityTempExponent =
        v.at("mobility_temp_exponent").asDouble();
    p.delayVariationGain = v.at("delay_variation_gain").asDouble();
    p.vddDroopGuardband = v.at("vdd_droop_guardband").asDouble();
    p.k1 = v.at("k1").asDouble();
    p.k2 = v.at("k2").asDouble();
    p.k3 = v.at("k3").asDouble();
    return p;
}

JsonValue
toSnapshot(const VariationMap &map)
{
    JsonValue payload = JsonValue::object();
    payload.set("params", toJson(map.params()));
    payload.set("grid_size", map.gridSize());
    payload.set("vt_sys", doubleArray(map.vtSystematicField()));
    payload.set("leff_sys", doubleArray(map.leffSystematicField()));
    return makeSnapshot("variation_map", kVariationMapVersion,
                        std::move(payload));
}

VariationMap
variationMapFromSnapshot(const JsonValue &snapshot)
{
    const JsonValue &p =
        snapshotPayload(snapshot, "variation_map", kVariationMapVersion);
    const auto n = static_cast<std::size_t>(p.at("grid_size").asInt());
    std::vector<double> vt = doubleVector(p.at("vt_sys"));
    std::vector<double> leff = doubleVector(p.at("leff_sys"));
    if (vt.size() != n * n || leff.size() != n * n)
        throw SnapshotError("variation_map field size mismatch");
    return VariationMap::fromFields(processParamsFromJson(p.at("params")),
                                    std::move(vt), std::move(leff));
}

JsonValue
toSnapshot(const Chip &chip)
{
    JsonValue payload = JsonValue::object();
    payload.set("id", chip.id());
    payload.set("num_cores", chip.floorplan().numCores());
    payload.set("rng", toJson(chip.rng().state()));
    // Nested complete snapshot: a chip's map is independently loadable.
    payload.set("map", toSnapshot(chip.map()));
    return makeSnapshot("chip", kChipVersion, std::move(payload));
}

Chip
chipFromSnapshot(const JsonValue &snapshot)
{
    const JsonValue &p = snapshotPayload(snapshot, "chip", kChipVersion);
    const auto numCores =
        static_cast<std::size_t>(p.at("num_cores").asInt());
    return Chip(p.at("id").asUint(),
                std::make_shared<Floorplan>(numCores),
                variationMapFromSnapshot(p.at("map")),
                Rng::fromState(rngStateFromJson(p.at("rng"))));
}

JsonValue
toSnapshot(const AppCharacterization &chr)
{
    JsonValue payload = JsonValue::object();
    payload.set("name", chr.name);
    payload.set("is_fp", chr.isFp);
    JsonValue phases = JsonValue::array();
    for (const PhaseData &phase : chr.phases) {
        JsonValue o = JsonValue::object();
        o.set("weight", phase.weight);
        o.set("chr", toJson(phase.chr));
        phases.push(std::move(o));
    }
    payload.set("phases", std::move(phases));
    return makeSnapshot("characterization", kCharacterizationVersion,
                        std::move(payload));
}

AppCharacterization
characterizationFromSnapshot(const JsonValue &snapshot)
{
    const JsonValue &p = snapshotPayload(snapshot, "characterization",
                                         kCharacterizationVersion);
    AppCharacterization chr;
    chr.name = p.at("name").asString();
    chr.isFp = p.at("is_fp").asBool();
    for (const JsonValue &e : p.at("phases").asArray()) {
        PhaseData phase;
        phase.weight = e.at("weight").asDouble();
        phase.chr = phaseCharacterizationFromJson(e.at("chr"));
        chr.phases.push_back(std::move(phase));
    }
    return chr;
}

JsonValue
toJson(const OperatingPoint &op)
{
    JsonValue o = JsonValue::object();
    o.set("freq", op.freq);
    JsonValue knobs = JsonValue::array();
    for (const SubsystemKnobs &k : op.knobs) {
        JsonValue kv = JsonValue::object();
        kv.set("vdd", k.vdd);
        kv.set("vbb", k.vbb);
        knobs.push(std::move(kv));
    }
    o.set("knobs", std::move(knobs));
    o.set("low_slope_fu", op.lowSlopeFu);
    o.set("small_queue", op.smallQueue);
    return o;
}

OperatingPoint
operatingPointFromJson(const JsonValue &v)
{
    OperatingPoint op;
    op.freq = v.at("freq").asDouble();
    const auto &knobs = v.at("knobs").asArray();
    if (knobs.size() != op.knobs.size())
        throw SnapshotError("operating point knob count mismatch");
    for (std::size_t i = 0; i < op.knobs.size(); ++i) {
        op.knobs[i].vdd = knobs[i].at("vdd").asDouble();
        op.knobs[i].vbb = knobs[i].at("vbb").asDouble();
    }
    op.lowSlopeFu = v.at("low_slope_fu").asBool();
    op.smallQueue = v.at("small_queue").asBool();
    return op;
}

JsonValue
toSnapshot(const AdaptationResult &result)
{
    JsonValue payload = JsonValue::object();
    payload.set("op", toJson(result.op));
    payload.set("feasible", result.feasible);
    payload.set("predicted_perf", result.predictedPerf);
    payload.set("predicted_pe", result.predictedPe);
    payload.set("fmax", doubleArray(result.fmax));
    return makeSnapshot("adaptation_result", kAdaptationResultVersion,
                        std::move(payload));
}

AdaptationResult
adaptationResultFromSnapshot(const JsonValue &snapshot)
{
    const JsonValue &p = snapshotPayload(snapshot, "adaptation_result",
                                         kAdaptationResultVersion);
    AdaptationResult result;
    result.op = operatingPointFromJson(p.at("op"));
    result.feasible = p.at("feasible").asBool();
    result.predictedPerf = p.at("predicted_perf").asDouble();
    result.predictedPe = p.at("predicted_pe").asDouble();
    result.fmax = fixedArray<kNumSubsystems>(p.at("fmax"));
    return result;
}

} // namespace eval
