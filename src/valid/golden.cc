#include "valid/golden.hh"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/config.hh"
#include "util/logging.hh"
#include "valid/json_value.hh"
#include "valid/snapshot.hh"

namespace eval {

namespace {

constexpr char kHeader[] = "# eval golden file v1";

bool
bitEqual(double a, double b)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

bool
metricMatches(const GoldenMetric &expected, double actual,
              std::string *note)
{
    switch (expected.kind) {
      case MetricKind::Exact:
        if (bitEqual(expected.value, actual))
            return true;
        *note = "exact mismatch";
        return false;
      case MetricKind::Relative: {
        if (bitEqual(expected.value, actual))
            return true;
        const double scale =
            std::max(std::fabs(expected.value), std::fabs(actual));
        const double gap = std::fabs(expected.value - actual);
        if (std::isfinite(gap) && gap <= expected.eps * scale)
            return true;
        *note = "relative gap " + formatExactDouble(
                    scale > 0.0 ? gap / scale : gap) +
                " > eps " + formatExactDouble(expected.eps);
        return false;
      }
      case MetricKind::Absolute: {
        if (bitEqual(expected.value, actual))
            return true;
        const double gap = std::fabs(expected.value - actual);
        if (std::isfinite(gap) && gap <= expected.eps)
            return true;
        *note = "absolute gap " + formatExactDouble(gap) + " > eps " +
                formatExactDouble(expected.eps);
        return false;
      }
    }
    *note = "unknown metric kind";
    return false;
}

std::string
diffReport(const GoldenFile &expected, const GoldenFile &actual,
           const std::vector<MetricDiff> &diffs)
{
    std::ostringstream out;
    out << "golden mismatch for '" << expected.name() << "': "
        << diffs.size() << " metric(s) differ\n";
    for (const MetricDiff &d : diffs) {
        out << "  " << d.metric << ": expected "
            << formatExactDouble(d.expected) << ", actual "
            << formatExactDouble(d.actual) << " (" << d.note << ")\n";
    }
    (void)actual;
    return out.str();
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot open for writing: ", path);
        return false;
    }
    out << text;
    return out.good();
}

} // namespace

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Exact:
        return "exact";
      case MetricKind::Relative:
        return "rel";
      case MetricKind::Absolute:
        return "abs";
    }
    return "?";
}

void
GoldenFile::add(const std::string &name, MetricKind kind, double eps,
                double value)
{
    EVAL_ASSERT(!name.empty() &&
                    name.find_first_of(" \t\n") == std::string::npos,
                "golden metric names must be non-empty and "
                "whitespace-free");
    EVAL_ASSERT(find(name) == nullptr,
                "duplicate golden metric name: ", name);
    metrics_.push_back({name, kind, eps, value});
}

void
GoldenFile::addExact(const std::string &name, double value)
{
    add(name, MetricKind::Exact, 0.0, value);
}

void
GoldenFile::addRelative(const std::string &name, double eps,
                        double value)
{
    add(name, MetricKind::Relative, eps, value);
}

const GoldenMetric *
GoldenFile::find(const std::string &name) const
{
    for (const GoldenMetric &m : metrics_) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

std::string
GoldenFile::serialize() const
{
    std::ostringstream out;
    out << kHeader << "\n";
    out << "# name: " << name_ << "\n";
    out << "# columns: metric <name> <exact|rel|abs> <eps> <value>\n";
    for (const GoldenMetric &m : metrics_) {
        out << "metric " << m.name << " " << metricKindName(m.kind)
            << " " << formatExactDouble(m.eps) << " "
            << formatExactDouble(m.value) << "\n";
    }
    return out.str();
}

GoldenFile
GoldenFile::parse(const std::string &text)
{
    GoldenFile file;
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        ++lineNo;
        if (lineNo == 1) {
            if (line != kHeader)
                throw SnapshotError(
                    "golden file missing v1 header");
            sawHeader = true;
            continue;
        }
        if (line.empty())
            continue;
        if (line[0] == '#') {
            const std::string namePrefix = "# name: ";
            if (line.rfind(namePrefix, 0) == 0)
                file.name_ = line.substr(namePrefix.size());
            continue;
        }
        std::istringstream fields(line);
        std::string tag, name, kindStr, epsStr, valueStr;
        if (!(fields >> tag >> name >> kindStr >> epsStr >> valueStr) ||
            tag != "metric") {
            throw SnapshotError("golden file line " +
                                     std::to_string(lineNo) +
                                     " is malformed: " + line);
        }
        std::string trailing;
        if (fields >> trailing) {
            throw SnapshotError("golden file line " +
                                     std::to_string(lineNo) +
                                     " has trailing fields");
        }
        MetricKind kind;
        if (kindStr == "exact")
            kind = MetricKind::Exact;
        else if (kindStr == "rel")
            kind = MetricKind::Relative;
        else if (kindStr == "abs")
            kind = MetricKind::Absolute;
        else
            throw SnapshotError("golden file line " +
                                     std::to_string(lineNo) +
                                     " has unknown kind: " + kindStr);
        file.add(name, kind, std::strtod(epsStr.c_str(), nullptr),
                 std::strtod(valueStr.c_str(), nullptr));
    }
    if (!sawHeader)
        throw SnapshotError("golden file is empty");
    return file;
}

std::vector<MetricDiff>
compareGolden(const GoldenFile &expected, const GoldenFile &actual)
{
    std::vector<MetricDiff> diffs;
    for (const GoldenMetric &m : expected.metrics()) {
        const GoldenMetric *a = actual.find(m.name);
        if (a == nullptr) {
            diffs.push_back(
                {m.name, "missing from actual run", m.value, 0.0});
            continue;
        }
        std::string note;
        if (!metricMatches(m, a->value, &note))
            diffs.push_back({m.name, note, m.value, a->value});
    }
    for (const GoldenMetric &m : actual.metrics()) {
        if (expected.find(m.name) == nullptr) {
            diffs.push_back(
                {m.name, "not present in golden", 0.0, m.value});
        }
    }
    return diffs;
}

bool
compareBitIdentical(const GoldenFile &a, const GoldenFile &b)
{
    return a.serialize() == b.serialize();
}

std::string
goldenDataDir()
{
#ifdef EVAL_GOLDEN_DATA_DIR
    const std::string fallback = EVAL_GOLDEN_DATA_DIR;
#else
    const std::string fallback = "tests/golden/data";
#endif
    return envString("EVAL_GOLDEN_DIR", fallback);
}

bool
goldenRecordMode()
{
    return envString("EVAL_GOLDEN_MODE", "") == "record";
}

GoldenCheckResult
checkGolden(const GoldenFile &actual)
{
    GoldenCheckResult result;
    const std::string dir = goldenDataDir();
    result.goldenPath = dir + "/" + actual.name() + ".golden";

    if (goldenRecordMode()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        result.recorded = true;
        result.ok = writeTextFile(result.goldenPath, actual.serialize());
        if (!result.ok)
            result.message =
                "failed to record golden: " + result.goldenPath;
        return result;
    }

    std::ifstream in(result.goldenPath);
    if (!in) {
        result.message = "golden file missing: " + result.goldenPath +
                         " (run with EVAL_GOLDEN_MODE=record or "
                         "scripts/regen_goldens.sh)";
        return result;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    GoldenFile expected;
    try {
        expected = GoldenFile::parse(buf.str());
    } catch (const std::runtime_error &e) {
        result.message = "cannot parse golden " + result.goldenPath +
                         ": " + e.what();
        return result;
    }

    result.diffs = compareGolden(expected, actual);
    if (result.diffs.empty()) {
        result.ok = true;
        return result;
    }

    result.message = diffReport(expected, actual, result.diffs);
    const std::string diffDir =
        envString("EVAL_GOLDEN_DIFF_DIR", "golden-diffs");
    std::error_code ec;
    std::filesystem::create_directories(diffDir, ec);
    const std::string actualPath =
        diffDir + "/" + actual.name() + ".actual.golden";
    const std::string reportPath =
        diffDir + "/" + actual.name() + ".diff.txt";
    if (writeTextFile(actualPath, actual.serialize()) &&
        writeTextFile(reportPath, result.message)) {
        result.diffPath = reportPath;
    }
    return result;
}

} // namespace eval
