/**
 * @file
 * The validation experiments: small, fully-pinned simulator runs whose
 * results are captured as golden metric files.  Every experiment fixes
 * its seed, chip count, application list and instruction budget in
 * code — no environment variable can change what a golden run
 * measures — so a metric drift always means a behaviour change.
 *
 * Experiments:
 *  - chip_population: manufactured-chip digests + subsystem means
 *    (exact; pins the variation-map pipeline and Rng::split fan-out);
 *  - optimizer_decisions: exhaustive-optimizer choices per phase
 *    (exact; pins the Freq/Power algorithms and the error model);
 *  - sweep_micro: a miniature Figure 10-12 environment sweep
 *    (exact; pins the end-to-end managed-run path);
 *  - fig13_micro: fuzzy-controller outcome mix across the four
 *    voltage environments (exact; pins Figure 13 shape);
 *  - paper_headline: the headline frequency/power numbers compared
 *    with relative tolerance (the paper-anchor golden).
 */

#pragma once

#include <string>
#include <vector>

#include "valid/golden.hh"

namespace eval {

/**
 * Deliberate model perturbations used by negative tests: the golden
 * suite must *fail* when the physics changes.  Scales multiply the
 * corresponding ProcessParams field before the experiment runs.
 */
struct ExperimentTweaks
{
    /** Scales delayVariationGain — the error-model sensitivity knob.
     *  1.01 is the canonical "1% error-model perturbation". */
    double delayVariationGainScale = 1.0;
};

/** Names accepted by runValidationExperiment, in canonical order. */
std::vector<std::string> validationExperiments();

/**
 * Run one validation experiment and return its metric fingerprint.
 * Fatal on an unknown name.  Deterministic for a fixed tweak set:
 * bit-identical across thread counts and PE-cache settings (the
 * differential tests hold that contract).
 */
GoldenFile runValidationExperiment(const std::string &name,
                                   const ExperimentTweaks &tweaks = {});

} // namespace eval

