#include "valid/experiments.hh"

#include <map>
#include <string>
#include <vector>

#include "core/environment.hh"
#include "core/fuzzy_adaptation.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "util/logging.hh"
#include "valid/serializers.hh"
#include "variation/chip.hh"
#include "workload/profile.hh"

namespace eval {

namespace {

/** Controller invocations happen at this heat-sink temperature. */
constexpr double kThC = 65.0;

std::string
subsystemTag(std::size_t i)
{
    return "s" + std::to_string(i);
}

ProcessParams
tweakedParams(ProcessParams p, const ExperimentTweaks &tweaks)
{
    p.delayVariationGain *= tweaks.delayVariationGainScale;
    return p;
}

double
snapshotDigest(const JsonValue &snapshot)
{
    return digest53(encodeBinary(snapshot));
}

// -- chip_population ----------------------------------------------------

GoldenFile
runChipPopulation(const ExperimentTweaks &tweaks)
{
    constexpr std::uint64_t kSeed = 20080642;
    constexpr std::size_t kChips = 8;

    GoldenFile golden("chip_population");
    ProcessParams params = tweakedParams(ProcessParams{}, tweaks);
    ChipFactory factory(params, kSeed);
    const std::vector<Chip> chips = factory.manufacture(kChips);

    golden.addExact("num_chips", static_cast<double>(chips.size()));
    for (const Chip &chip : chips) {
        golden.addExact("chip" + std::to_string(chip.id()) + "_digest",
                        snapshotDigest(toSnapshot(chip)));
    }
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        golden.addExact("chip0_vt_sys_" + subsystemTag(i),
                        chips[0].subsystemVtSys(0, id));
        golden.addExact("chip0_leff_sys_" + subsystemTag(i),
                        chips[0].subsystemLeffSys(0, id));
    }
    return golden;
}

// -- optimizer_decisions ------------------------------------------------

ExperimentConfig
microConfig(std::uint64_t seed, int chips,
            std::vector<std::string> apps,
            const ExperimentTweaks &tweaks)
{
    ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.chips = chips;
    cfg.simInsts = 60000;
    cfg.apps = std::move(apps);
    cfg.process = tweakedParams(cfg.process, tweaks);
    return cfg;
}

GoldenFile
runOptimizerDecisions(const ExperimentTweaks &tweaks)
{
    GoldenFile golden("optimizer_decisions");
    ExperimentContext ctx(microConfig(7, 2, {"gzip", "swim"}, tweaks));
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::ALL);
    ExhaustiveOptimizer exh(caps, ctx.config().constraints);
    CoreOptimizer optimizer(exh, caps, ctx.config().constraints,
                            ctx.config().recovery);

    const auto apps = ctx.selectedApps();
    for (std::size_t chip = 0;
         chip < static_cast<std::size_t>(ctx.config().chips); ++chip) {
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const AppProfile &app = *apps[a];
            const std::size_t coreIdx = (chip + a) % 4;
            CoreSystemModel &core = ctx.coreModel(chip, coreIdx);
            core.setAppType(app.isFp);
            const AppCharacterization &chr =
                ctx.characterizations().get(app);
            for (std::size_t p = 0; p < chr.phases.size(); ++p) {
                const AdaptationResult ad =
                    optimizer.choose(core, chr.phases[p].chr, kThC);
                const std::string tag = "c" + std::to_string(chip) +
                                        "_" + app.name + "_p" +
                                        std::to_string(p);
                golden.addExact(tag + "_freq", ad.op.freq);
                golden.addExact(tag + "_perf", ad.predictedPerf);
                golden.addExact(tag + "_pe", ad.predictedPe);
                golden.addExact(tag + "_feasible",
                                ad.feasible ? 1.0 : 0.0);
                golden.addExact(tag + "_op_digest",
                                snapshotDigest(toSnapshot(ad)));
            }
        }
    }
    return golden;
}

// -- sweep_micro / paper_headline ---------------------------------------

/** Mean run metrics of one (environment, scheme) over chips x apps. */
struct SweepCell
{
    double freqRel = 0.0;
    double perfRel = 0.0;
    double powerW = 0.0;
    std::map<RetuneOutcome, std::uint64_t> outcomes;
    std::uint64_t runs = 0;
};

/** One chip's contribution; merged serially in chip order so the
 *  accumulated doubles are independent of the thread count. */
SweepCell
runChipCell(ExperimentContext &ctx,
            const std::vector<const AppProfile *> &apps,
            std::size_t chip, EnvironmentKind env, AdaptScheme scheme)
{
    SweepCell cell;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const std::size_t coreIdx = (chip + a) % 4;
        const AppRunResult r =
            ctx.runApp(chip, coreIdx, *apps[a], env, scheme);
        cell.freqRel += r.freqRel;
        cell.perfRel += r.perfRel;
        cell.powerW += r.powerW;
        for (RetuneOutcome o : r.outcomes)
            ++cell.outcomes[o];
        ++cell.runs;
    }
    return cell;
}

SweepCell
runSweepCell(ExperimentContext &ctx,
             const std::vector<const AppProfile *> &apps,
             EnvironmentKind env, AdaptScheme scheme)
{
    const auto chips = static_cast<std::size_t>(ctx.config().chips);
    static ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(chips);
    const auto perChip = globalPool().parallelMap(
        chips, [&](std::size_t chip) {
            SweepCell cell = runChipCell(ctx, apps, chip, env, scheme);
            chipProgress.tick();
            return cell;
        });
    SweepCell total;
    for (const SweepCell &c : perChip) {
        total.freqRel += c.freqRel;
        total.perfRel += c.perfRel;
        total.powerW += c.powerW;
        for (const auto &[o, n] : c.outcomes)
            total.outcomes[o] += n;
        total.runs += c.runs;
    }
    if (total.runs > 0) {
        const double n = static_cast<double>(total.runs);
        total.freqRel /= n;
        total.perfRel /= n;
        total.powerW /= n;
    }
    return total;
}

void
addCellMetrics(GoldenFile &golden, const std::string &tag,
               const SweepCell &cell, double relEps)
{
    const auto add = [&](const std::string &name, double value) {
        if (relEps > 0.0)
            golden.addRelative(name, relEps, value);
        else
            golden.addExact(name, value);
    };
    add(tag + "_freq_rel", cell.freqRel);
    add(tag + "_perf_rel", cell.perfRel);
    add(tag + "_power_w", cell.powerW);
}

void
addOutcomeMetrics(GoldenFile &golden, const std::string &tag,
                  const SweepCell &cell)
{
    const std::pair<RetuneOutcome, const char *> kinds[] = {
        {RetuneOutcome::NoChange, "no_change"},
        {RetuneOutcome::LowFreq, "low_freq"},
        {RetuneOutcome::Error, "error"},
        {RetuneOutcome::Temp, "temp"},
        {RetuneOutcome::Power, "power"},
    };
    for (const auto &[o, name] : kinds) {
        const auto it = cell.outcomes.find(o);
        golden.addExact(
            tag + "_out_" + name,
            static_cast<double>(it == cell.outcomes.end() ? 0
                                                          : it->second));
    }
}

GoldenFile
runSweepMicro(const ExperimentTweaks &tweaks)
{
    GoldenFile golden("sweep_micro");
    ExperimentContext ctx(microConfig(1, 3, {"gzip", "swim"}, tweaks));
    const auto apps = ctx.selectedApps();
    for (const AppProfile *app : apps)
        ctx.novarPerf(*app);

    const SweepCell baseline = runSweepCell(
        ctx, apps, EnvironmentKind::Baseline, AdaptScheme::Static);
    addCellMetrics(golden, "baseline", baseline, 0.0);
    const SweepCell novar = runSweepCell(
        ctx, apps, EnvironmentKind::NoVar, AdaptScheme::Static);
    addCellMetrics(golden, "novar", novar, 0.0);

    const std::pair<EnvironmentKind, const char *> envs[] = {
        {EnvironmentKind::TS, "ts"},
        {EnvironmentKind::TS_ASV_Q_FU, "pref"},
    };
    const std::pair<AdaptScheme, const char *> schemes[] = {
        {AdaptScheme::Static, "static"},
        {AdaptScheme::FuzzyDyn, "fuzzy"},
        {AdaptScheme::ExhDyn, "exh"},
    };
    for (const auto &[env, envTag] : envs) {
        for (const auto &[scheme, schemeTag] : schemes) {
            const SweepCell cell = runSweepCell(ctx, apps, env, scheme);
            const std::string tag =
                std::string(envTag) + "_" + schemeTag;
            addCellMetrics(golden, tag, cell, 0.0);
            if (scheme != AdaptScheme::Static)
                addOutcomeMetrics(golden, tag, cell);
        }
    }
    return golden;
}

GoldenFile
runPaperHeadline(const ExperimentTweaks &tweaks)
{
    // Relative tolerance for the physics outputs: libm differences
    // across platforms may perturb the last few bits, but anything
    // above 1e-9 is a model change, not noise.
    constexpr double kRelEps = 1e-9;

    GoldenFile golden("paper_headline");
    ExperimentContext ctx(
        microConfig(1, 4, {"gzip", "mcf", "swim", "applu"}, tweaks));
    const auto apps = ctx.selectedApps();
    for (const AppProfile *app : apps)
        ctx.novarPerf(*app);

    const SweepCell baseline = runSweepCell(
        ctx, apps, EnvironmentKind::Baseline, AdaptScheme::Static);
    const SweepCell novar = runSweepCell(
        ctx, apps, EnvironmentKind::NoVar, AdaptScheme::Static);
    const SweepCell preferred = runSweepCell(
        ctx, apps, EnvironmentKind::TS_ASV_Q_FU, AdaptScheme::FuzzyDyn);

    addCellMetrics(golden, "baseline", baseline, kRelEps);
    addCellMetrics(golden, "novar", novar, kRelEps);
    addCellMetrics(golden, "preferred", preferred, kRelEps);
    golden.addRelative("freq_gain", kRelEps,
                       preferred.freqRel - baseline.freqRel);
    return golden;
}

// -- fig13_micro --------------------------------------------------------

GoldenFile
runFig13Micro(const ExperimentTweaks &tweaks)
{
    GoldenFile golden("fig13_micro");
    ExperimentContext ctx(
        microConfig(1, 3, {"gzip", "swim", "applu"}, tweaks));
    const auto apps = ctx.selectedApps();

    // The FU+Queue technique row of Figure 13 across the four voltage
    // environments (same construction as bench_fig13_outcomes).
    const auto makeCaps = [](bool abb, bool asv) {
        EnvCapabilities caps;
        caps.timingSpec = true;
        caps.abb = abb;
        caps.asv = asv;
        caps.fuReplication = true;
        caps.queueResize = true;
        return caps;
    };
    const std::tuple<const char *, bool, bool> voltages[] = {
        {"a_ts", false, false},
        {"b_ts_abb", true, false},
        {"c_ts_asv", false, true},
        {"d_ts_abb_asv", true, true},
    };

    static ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(
        std::size(voltages) *
        static_cast<std::uint64_t>(ctx.config().chips));
    for (const auto &[tag, abb, asv] : voltages) {
        const EnvCapabilities caps = makeCaps(abb, asv);
        const auto perChip = globalPool().parallelMap(
            static_cast<std::size_t>(ctx.config().chips),
            [&](std::size_t chip) {
                SweepCell local;
                for (std::size_t a = 0; a < apps.size(); ++a) {
                    const AppProfile &app = *apps[a];
                    const std::size_t coreIdx = (chip + a) % 4;
                    CoreSystemModel &core = ctx.coreModel(chip, coreIdx);
                    core.setAppType(app.isFp);
                    FuzzyOptimizer fuzzy(
                        ctx.coreFuzzy(chip, coreIdx, caps));
                    DynamicController ctl(fuzzy, caps,
                                          ctx.config().constraints,
                                          ctx.config().recovery);
                    const AppCharacterization &chr =
                        ctx.characterizations().get(app);
                    for (std::size_t p = 0; p < chr.phases.size();
                         ++p) {
                        const PhaseAdaptation ad = ctl.adaptPhase(
                            core, p, chr.phases[p].chr, kThC);
                        if (!ad.reusedSaved) {
                            ++local.outcomes[ad.outcome];
                            ++local.runs;
                        }
                    }
                }
                chipProgress.tick();
                return local;
            });
        SweepCell cell;
        for (const SweepCell &local : perChip) {
            for (const auto &[o, n] : local.outcomes)
                cell.outcomes[o] += n;
            cell.runs += local.runs;
        }
        golden.addExact(std::string(tag) + "_invocations",
                        static_cast<double>(cell.runs));
        addOutcomeMetrics(golden, tag, cell);
    }
    return golden;
}

} // namespace

std::vector<std::string>
validationExperiments()
{
    return {"chip_population", "optimizer_decisions", "sweep_micro",
            "fig13_micro", "paper_headline"};
}

GoldenFile
runValidationExperiment(const std::string &name,
                        const ExperimentTweaks &tweaks)
{
    if (name == "chip_population")
        return runChipPopulation(tweaks);
    if (name == "optimizer_decisions")
        return runOptimizerDecisions(tweaks);
    if (name == "sweep_micro")
        return runSweepMicro(tweaks);
    if (name == "fig13_micro")
        return runFig13Micro(tweaks);
    if (name == "paper_headline")
        return runPaperHeadline(tweaks);
    EVAL_FATAL("unknown validation experiment: ", name);
}

} // namespace eval
