/**
 * @file
 * Golden-reference file harness: named metric sets with per-metric
 * tolerance specs, a deterministic text serialization, and a
 * record/compare driver.
 *
 * A golden file is a list of `metric <name> <kind> <eps> <value>`
 * lines.  Values are printed with %.17g so doubles round-trip exactly
 * through strtod; `exact` metrics therefore pin bit patterns
 * (determinism contracts), while `rel`/`abs` metrics tolerate the
 * stated epsilon (physics outputs).
 *
 * checkGolden() is the single entry point used by tests:
 *  - EVAL_GOLDEN_MODE=record rewrites the golden from the actual run;
 *  - otherwise the actual run is compared against the stored golden
 *    using the *stored* tolerances, and on mismatch a diff artifact is
 *    written for CI upload.
 */

#pragma once

#include <string>
#include <vector>

namespace eval {

/** How a golden metric is compared against a fresh measurement. */
enum class MetricKind {
    Exact,    ///< bit-identical doubles (determinism contract)
    Relative, ///< |a-b| <= eps * max(|a|, |b|)
    Absolute, ///< |a-b| <= eps
};

const char *metricKindName(MetricKind kind);

/** One named measurement with its comparison policy. */
struct GoldenMetric {
    std::string name;
    MetricKind kind = MetricKind::Exact;
    double eps = 0.0;
    double value = 0.0;
};

/** A named, ordered set of metrics — one experiment's fingerprint. */
class GoldenFile
{
  public:
    GoldenFile() = default;
    explicit GoldenFile(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    const std::vector<GoldenMetric> &metrics() const { return metrics_; }

    /** Append a metric; names must be unique within a file. */
    void add(const std::string &name, MetricKind kind, double eps,
             double value);
    void addExact(const std::string &name, double value);
    void addRelative(const std::string &name, double eps, double value);

    /** Lookup by name; returns nullptr when absent. */
    const GoldenMetric *find(const std::string &name) const;

    /** Deterministic text form (stable across runs and platforms). */
    std::string serialize() const;

    /** Inverse of serialize(); throws std::runtime_error on bad input. */
    static GoldenFile parse(const std::string &text);

  private:
    std::string name_;
    std::vector<GoldenMetric> metrics_;
};

/** One metric-level discrepancy from compareGolden(). */
struct MetricDiff {
    std::string metric;
    std::string note; ///< human-readable reason
    double expected = 0.0;
    double actual = 0.0;
};

/**
 * Compare @p actual against @p expected using the tolerances stored in
 * @p expected (the golden file owns the policy).  Reports missing and
 * unexpected metrics as diffs too.
 */
std::vector<MetricDiff> compareGolden(const GoldenFile &expected,
                                      const GoldenFile &actual);

/** True iff both files serialize to the same bytes. */
bool compareBitIdentical(const GoldenFile &a, const GoldenFile &b);

/** Outcome of a checkGolden() run, suitable for gtest assertions. */
struct GoldenCheckResult {
    bool ok = false;
    bool recorded = false; ///< true when record mode rewrote the file
    std::string goldenPath;
    std::string diffPath; ///< non-empty when a diff artifact was written
    std::string message;  ///< failure summary (empty when ok)
    std::vector<MetricDiff> diffs;
};

/** Directory goldens are read from / recorded into: EVAL_GOLDEN_DIR
 *  env override, else the compiled-in tests/golden/data path. */
std::string goldenDataDir();

/** True when EVAL_GOLDEN_MODE=record. */
bool goldenRecordMode();

/**
 * Record or compare @p actual against `<dir>/<actual.name()>.golden`.
 * In compare mode a mismatch writes the actual file and a diff report
 * under EVAL_GOLDEN_DIFF_DIR (default ./golden-diffs) so CI can
 * upload them.
 */
GoldenCheckResult checkGolden(const GoldenFile &actual);

} // namespace eval

