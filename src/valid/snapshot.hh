/**
 * @file
 * Versioned snapshot envelope and codecs for the validation
 * subsystem.
 *
 * A snapshot is a JsonValue payload wrapped in an envelope carrying
 * the container magic, the container format version, and the payload
 * kind + kind version:
 *
 *   {"magic": "EVALSNAP", "format_version": 1,
 *    "kind": "chip", "kind_version": 1, "payload": {...}}
 *
 * Two byte-level encodings of the same value tree exist:
 *  - text: canonical JSON (JsonValue::dump) — human-diffable, doubles
 *    round-trip via %.17g;
 *  - binary: a compact tagged encoding where doubles are stored as
 *    their raw 8 bytes (bit-exact by construction) and integers as
 *    zigzag varints.
 *
 * decode/validate failures throw SnapshotError, never abort: a stale
 * or corrupt snapshot is an expected, reportable condition.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "valid/json_value.hh"

namespace eval {

/** Envelope/codec violation (bad magic, wrong version, corrupt data). */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Container format version of the envelope itself. */
constexpr std::uint32_t kSnapshotFormatVersion = 1;

/** Wrap @p payload in a versioned envelope. */
JsonValue makeSnapshot(const std::string &kind,
                       std::uint32_t kindVersion, JsonValue payload);

/**
 * Check the envelope (magic, format version, kind, kind version) and
 * return the payload.  Throws SnapshotError with a precise message on
 * any mismatch — version skew must be loud, not silently tolerated.
 */
const JsonValue &snapshotPayload(const JsonValue &snapshot,
                                 const std::string &expectKind,
                                 std::uint32_t expectKindVersion);

/** Compact binary encoding of a value tree (doubles bit-exact). */
std::string encodeBinary(const JsonValue &value);

/** Decode encodeBinary output; throws SnapshotError on corruption. */
JsonValue decodeBinary(std::string_view bytes);

/** Write/read snapshots to disk.  writeFile returns false (with a
 *  warn) on IO failure; readFile throws SnapshotError. */
bool writeSnapshotFile(const std::string &path, const JsonValue &snapshot,
                       bool binary);
JsonValue readSnapshotFile(const std::string &path);

/** FNV-1a over a byte string: the digest primitive used to pin large
 *  payloads (variation fields, decision vectors) in golden files. */
std::uint64_t fnv1a(std::string_view bytes);

/**
 * Digest folded to 53 bits so it is exactly representable as a double
 * golden metric (goldens store doubles; 2^53 distinct values retain
 * all practical collision-detection power).
 */
double digest53(std::string_view bytes);

} // namespace eval

