/**
 * @file
 * Differential-testing driver: runs one validation experiment under
 * configurations that must not change the answer — serial vs threaded
 * execution (1/2/4/8 workers) and PE memo cache on vs off — and
 * asserts bit-identical metric files.  This is the executable form of
 * the repo's determinism contract: parallel fan-out and caching are
 * pure optimizations.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "valid/experiments.hh"

namespace eval {

/** One configuration-vs-reference comparison. */
struct DifferentialCheck
{
    std::string label;    ///< e.g. "threads=4" or "pe_cache=off"
    bool identical = false;
    std::string detail;   ///< first differing metrics when not identical
};

/** Everything one differential run produced. */
struct DifferentialReport
{
    std::string experiment;
    std::vector<DifferentialCheck> checks;

    bool allIdentical() const;
    /** Multi-line human-readable summary (for assertion messages). */
    std::string summary() const;
};

/**
 * Run @p experiment serially (threads=1, PE cache on) as the
 * reference, then once per entry in @p threadCounts and once with the
 * PE cache disabled, comparing each rerun bit-for-bit against the
 * reference.  The global pool size and cache setting are restored
 * before returning.
 */
DifferentialReport
runDifferential(const std::string &experiment,
                const std::vector<std::size_t> &threadCounts = {2, 4, 8},
                const ExperimentTweaks &tweaks = {});

} // namespace eval

