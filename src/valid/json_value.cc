#include "valid/json_value.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eval {

namespace {

[[noreturn]] void
typeError(const char *want, JsonValue::Type got)
{
    static const char *names[] = {"null",   "bool",  "int",   "double",
                                  "string", "array", "object"};
    throw JsonTypeError(std::string("JSON value is not ") + want +
                             " (it is " +
                             names[static_cast<int>(got)] + ")");
}

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/** Recursive-descent parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw JsonParseError(what, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        // Guard against stack exhaustion on adversarial nesting.
        if (++depth_ > 256)
            fail("nesting too deep");
        skipWs();
        JsonValue v = parseValueInner();
        --depth_;
        return v;
    }

    JsonValue
    parseValueInner()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return JsonValue(parseString());
        if (consumeLiteral("true"))
            return JsonValue(true);
        if (consumeLiteral("false"))
            return JsonValue(false);
        if (consumeLiteral("null"))
            return JsonValue();
        if (consumeLiteral("NaN"))
            return JsonValue(std::nan(""));
        if (consumeLiteral("Infinity"))
            return JsonValue(HUGE_VAL);
        if (consumeLiteral("-Infinity"))
            return JsonValue(-HUGE_VAL);
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail("unexpected character");
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'n':  out.push_back('\n'); break;
              case 'r':  out.push_back('\r'); break;
              case 't':  out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // We only emit \u for control bytes; decode the BMP
                // codepoint as UTF-8 for generality.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        // JSON forbids leading zeros ("01" is two tokens, not eight).
        if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
            text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9')
            fail("leading zero in number");
        bool isInt = true;
        bool sawDigit = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                sawDigit = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E') {
                isInt = false;
                ++pos_;
            } else if ((c == '+' || c == '-') &&
                       (text_[pos_ - 1] == 'e' ||
                        text_[pos_ - 1] == 'E')) {
                ++pos_;
            } else {
                break;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (!sawDigit)
            fail("malformed number");
        if (isInt) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (end && *end == '\0' && errno != ERANGE)
                return JsonValue(static_cast<std::int64_t>(v));
            // Fall through to double on int64 overflow.
        }
        char *end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            fail("malformed number");
        return JsonValue(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::string
formatExactDouble(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "Infinity" : "-Infinity";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    // Integral-looking output ("5", "-0") would re-parse as an Int and
    // lose the Double type (and -0.0's sign bit); force a fraction.
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

JsonValue::JsonValue(std::uint64_t u)
    : type_(Type::Int), int_(static_cast<std::int64_t>(u))
{
    // Full-range u64 payloads (rng words, hashes) survive exactly as
    // the same 64 bits; asUint() casts back.
}

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        typeError("bool", type_);
    return bool_;
}

std::int64_t
JsonValue::asInt() const
{
    if (type_ != Type::Int)
        typeError("int", type_);
    return int_;
}

std::uint64_t
JsonValue::asUint() const
{
    return static_cast<std::uint64_t>(asInt());
}

double
JsonValue::asDouble() const
{
    if (type_ == Type::Int)
        return static_cast<double>(int_);
    if (type_ != Type::Double)
        typeError("double", type_);
    return double_;
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        typeError("string", type_);
    return string_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (type_ != Type::Array)
        typeError("array", type_);
    return array_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (type_ != Type::Object)
        typeError("object", type_);
    return object_;
}

void
JsonValue::push(JsonValue v)
{
    if (type_ != Type::Array)
        typeError("array", type_);
    array_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (type_ != Type::Object)
        typeError("object", type_);
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    for (const auto &member : asObject())
        if (member.first == key)
            return member.second;
    throw JsonTypeError("JSON object has no member '" + key + "'");
}

bool
JsonValue::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &member : object_)
        if (member.first == key)
            return true;
    return false;
}

std::size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    typeError("array or object", type_);
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent >= 0)
        out.push_back('\n');
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    const std::string pad =
        pretty ? std::string(static_cast<std::size_t>(indent) *
                                 (static_cast<std::size_t>(depth) + 1),
                             ' ')
               : std::string();
    const std::string closePad =
        pretty ? std::string(static_cast<std::size_t>(indent) *
                                 static_cast<std::size_t>(depth),
                             ' ')
               : std::string();
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Double:
        out += formatExactDouble(double_);
        break;
      case Type::String:
        appendEscaped(out, string_);
        break;
      case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out.push_back(',');
            if (pretty) {
                out.push_back('\n');
                out += pad;
            } else if (i) {
                out.push_back(' ');
            }
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (pretty) {
            out.push_back('\n');
            out += closePad;
        }
        out.push_back(']');
        break;
      case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out.push_back(',');
            if (pretty) {
                out.push_back('\n');
                out += pad;
            } else if (i) {
                out.push_back(' ');
            }
            appendEscaped(out, object_[i].first);
            out += ": ";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (pretty) {
            out.push_back('\n');
            out += closePad;
        }
        out.push_back('}');
        break;
    }
}

JsonValue
JsonValue::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::Int:
        return int_ == other.int_;
      case Type::Double:
        // Bit-pattern equality: NaN == NaN, and +0/-0 differ, which is
        // what snapshot round-trip fidelity means.
        return formatExactDouble(double_) ==
               formatExactDouble(other.double_);
      case Type::String:
        return string_ == other.string_;
      case Type::Array:
        return array_ == other.array_;
      case Type::Object:
        return object_ == other.object_;
    }
    return false;
}

} // namespace eval
