/**
 * @file
 * Minimal JSON document model for the validation subsystem: a value
 * tree with a deterministic, round-trip-exact writer and a strict
 * parser.
 *
 * Design points that matter for golden/snapshot use:
 *  - Doubles print as %.17g, which strtod round-trips bit-exactly for
 *    every finite IEEE-754 double; non-finite values use the bare
 *    tokens NaN / Infinity / -Infinity (accepted back by the parser),
 *    so no value is unrepresentable.
 *  - Integers are kept as int64 (not coerced to double) so ids and
 *    counters survive exactly.
 *  - Object members preserve insertion order, making dump() output a
 *    deterministic function of construction order — a requirement for
 *    byte-identical golden regeneration.
 *  - parse() throws JsonParseError (never aborts), so malformed input
 *    is a recoverable, fuzz-testable condition.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eval {

/** Malformed JSON text; carries the byte offset of the error. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t offset)
        : std::runtime_error(what + " at offset " +
                             std::to_string(offset)),
          offset_(offset)
    {
    }

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/** A typed accessor was called on a value of another type, or a
 *  required object member is absent.  Distinct from JsonParseError:
 *  the text parsed fine, the shape is wrong. */
class JsonTypeError : public std::runtime_error
{
  public:
    explicit JsonTypeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One JSON value (null / bool / int64 / double / string / array /
 *  object with ordered members). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Member = std::pair<std::string, JsonValue>;
    using Object = std::vector<Member>;

    JsonValue() : type_(Type::Null) {}
    JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    JsonValue(std::int64_t i) : type_(Type::Int), int_(i) {}
    JsonValue(int i) : type_(Type::Int), int_(i) {}
    JsonValue(std::uint64_t u);
    JsonValue(double d) : type_(Type::Double), double_(d) {}
    JsonValue(std::string s) : type_(Type::String), string_(std::move(s))
    {
    }
    JsonValue(const char *s) : type_(Type::String), string_(s) {}

    static JsonValue array() { return JsonValue(Type::Array); }
    static JsonValue object() { return JsonValue(Type::Object); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }

    /** Typed accessors; throw JsonTypeError on a type mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;   ///< accepts Int and Double
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Append to an array value. */
    void push(JsonValue v);

    /** Set (or overwrite) an object member, preserving order. */
    void set(const std::string &key, JsonValue v);

    /** Object member lookup; throws on missing key / non-object. */
    const JsonValue &at(const std::string &key) const;

    /** Whether an object value has the member. */
    bool has(const std::string &key) const;

    std::size_t size() const;

    /**
     * Serialize.  @p indent < 0 gives the compact single-line form;
     * >= 0 pretty-prints with that many spaces per level.  Output is a
     * deterministic function of the value tree.
     */
    std::string dump(int indent = -1) const;

    /** Strict parse of a complete JSON document (throws
     *  JsonParseError; trailing garbage is an error). */
    static JsonValue parse(std::string_view text);

    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }

  private:
    explicit JsonValue(Type t) : type_(t) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/** Format a double as the shortest exact round-trip literal (%.17g). */
std::string formatExactDouble(double v);

} // namespace eval

