#include "valid/checkpoint.hh"

#include <cstdio>

#include "util/logging.hh"
#include "valid/snapshot.hh"

namespace eval {

namespace {

constexpr const char *kKind = "shard_checkpoint";

/** Digest pinning the accumulator payload byte-exactly. */
double
accumulatorDigest(const JsonValue &accumulator)
{
    return digest53(encodeBinary(accumulator));
}

std::uint64_t
fieldUint(const JsonValue &obj, const char *key)
{
    if (!obj.has(key))
        throw SnapshotError(std::string("shard checkpoint missing '") +
                            key + "'");
    return obj.at(key).asUint();
}

ShardCheckpoint
checkpointFromPayload(const JsonValue &payload)
{
    ShardCheckpoint cp;
    if (!payload.has("campaign"))
        throw SnapshotError("shard checkpoint missing 'campaign'");
    cp.campaignFingerprint = payload.at("campaign").asString();
    cp.shardIndex = static_cast<std::uint32_t>(
        fieldUint(payload, "shard_index"));
    cp.shardCount = static_cast<std::uint32_t>(
        fieldUint(payload, "shard_count"));
    cp.rangeBegin = fieldUint(payload, "range_begin");
    cp.rangeEnd = fieldUint(payload, "range_end");
    cp.nextChip = fieldUint(payload, "next_chip");
    if (!payload.has("accumulator") || !payload.has("integrity"))
        throw SnapshotError(
            "shard checkpoint missing accumulator/integrity");
    cp.accumulator = payload.at("accumulator");

    if (cp.shardCount == 0 || cp.shardIndex >= cp.shardCount)
        throw SnapshotError("shard checkpoint has impossible shard "
                            "coordinates");
    if (cp.rangeEnd < cp.rangeBegin || cp.nextChip < cp.rangeBegin ||
        cp.nextChip > cp.rangeEnd)
        throw SnapshotError(
            "shard checkpoint cursor outside its chip range");

    const double expect = payload.at("integrity").asDouble();
    const double got = accumulatorDigest(cp.accumulator);
    if (expect != got)
        throw SnapshotError(
            "shard checkpoint integrity digest mismatch (stored " +
            formatExactDouble(expect) + ", recomputed " +
            formatExactDouble(got) + ")");
    return cp;
}

} // namespace

JsonValue
toSnapshot(const ShardCheckpoint &cp)
{
    JsonValue payload = JsonValue::object();
    payload.set("campaign", cp.campaignFingerprint);
    payload.set("shard_index",
                static_cast<std::uint64_t>(cp.shardIndex));
    payload.set("shard_count",
                static_cast<std::uint64_t>(cp.shardCount));
    payload.set("range_begin", cp.rangeBegin);
    payload.set("range_end", cp.rangeEnd);
    payload.set("next_chip", cp.nextChip);
    payload.set("accumulator", cp.accumulator);
    payload.set("integrity", accumulatorDigest(cp.accumulator));
    return makeSnapshot(kKind, kShardCheckpointVersion,
                        std::move(payload));
}

ShardCheckpoint
checkpointFromSnapshot(const JsonValue &snapshot)
{
    const JsonValue &payload =
        snapshotPayload(snapshot, kKind, kShardCheckpointVersion);

    // Translate JsonValue's plain runtime_errors (wrong member type
    // after a bit flip, say) into this module's SnapshotError so
    // callers only ever see the one exception type.
    try {
        return checkpointFromPayload(payload);
    } catch (const SnapshotError &) {
        throw;
    } catch (const std::exception &e) {
        throw SnapshotError(
            std::string("shard checkpoint malformed: ") + e.what());
    }
}

bool
writeCheckpointFile(const std::string &path, const ShardCheckpoint &cp,
                    bool binary)
{
    // Temp-in-same-directory + rename: the final name either holds
    // the previous complete checkpoint or the new complete one,
    // never a prefix.  (writeSnapshotFile itself is not atomic.)
    const std::string tmp = path + ".tmp";
    if (!writeSnapshotFile(tmp, toSnapshot(cp), binary))
        return false;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot rename checkpoint into place: ", path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

ShardCheckpoint
readCheckpointFile(const std::string &path)
{
    try {
        return checkpointFromSnapshot(readSnapshotFile(path));
    } catch (const SnapshotError &e) {
        throw SnapshotError("checkpoint " + path + ": " + e.what());
    }
}

} // namespace eval
