/**
 * @file
 * Snapshot serializers for the simulator's core state: variation maps,
 * manufactured chips, workload characterizations, and optimizer
 * decisions.  Every toSnapshot/fromSnapshot pair guarantees bit-exact
 * round trips through both the JSON text and the compact binary
 * encodings (tests/golden/snapshot_roundtrip_test.cpp holds the
 * contract); fromSnapshot throws SnapshotError on version or shape
 * mismatches.
 *
 * Kind versions bump whenever a payload's meaning changes so stale
 * snapshots fail loudly instead of deserializing garbage.
 */

#pragma once

#include "core/environment.hh"
#include "core/optimizer.hh"
#include "util/random.hh"
#include "valid/snapshot.hh"
#include "variation/chip.hh"
#include "variation/variation_map.hh"

namespace eval {

// -- Rng state ----------------------------------------------------------
JsonValue toJson(const Rng::State &state);
Rng::State rngStateFromJson(const JsonValue &v);

// -- ProcessParams ------------------------------------------------------
JsonValue toJson(const ProcessParams &p);
ProcessParams processParamsFromJson(const JsonValue &v);

// -- VariationMap (kind "variation_map") --------------------------------
JsonValue toSnapshot(const VariationMap &map);
VariationMap variationMapFromSnapshot(const JsonValue &snapshot);

// -- Chip (kind "chip") -------------------------------------------------
JsonValue toSnapshot(const Chip &chip);
Chip chipFromSnapshot(const JsonValue &snapshot);

// -- Characterization (kind "characterization") -------------------------
JsonValue toSnapshot(const AppCharacterization &chr);
AppCharacterization characterizationFromSnapshot(const JsonValue &snapshot);

// -- Optimizer decision (kind "adaptation_result") ----------------------
JsonValue toJson(const OperatingPoint &op);
OperatingPoint operatingPointFromJson(const JsonValue &v);

JsonValue toSnapshot(const AdaptationResult &result);
AdaptationResult adaptationResultFromSnapshot(const JsonValue &snapshot);

} // namespace eval

