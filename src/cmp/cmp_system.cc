#include "cmp/cmp_system.hh"

#include <algorithm>

#include "core/perf_model.hh"
#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

WorkloadMix
intHeavyMix()
{
    return {&appByName("gzip"), &appByName("crafty"), &appByName("gcc"),
            &appByName("bzip2")};
}

WorkloadMix
fpHeavyMix()
{
    return {&appByName("swim"), &appByName("lucas"), &appByName("applu"),
            &appByName("sixtrack")};
}

WorkloadMix
mixedMix()
{
    return {&appByName("gzip"), &appByName("swim"), &appByName("crafty"),
            &appByName("equake")};
}

WorkloadMix
memBoundMix()
{
    return {&appByName("mcf"), &appByName("art"), &appByName("swim"),
            &appByName("equake")};
}

CmpSystem::CmpSystem(ExperimentContext &ctx, std::size_t chipIndex)
    : ctx_(ctx), chipIndex_(chipIndex)
{
    EVAL_ASSERT(chipIndex < ctx.numChips(), "chip index out of range");
}

CmpSystem::CoreOutcome
CmpSystem::runCoreAtTh(std::size_t core, const AppProfile &app,
                       EnvironmentKind env, AdaptScheme scheme,
                       double thC, unsigned throttleSteps)
{
    const ExperimentConfig &cfg = ctx_.config();
    CoreSystemModel &model = ctx_.coreModel(chipIndex_, core);
    model.setAppType(app.isFp);
    const AppCharacterization &chr = ctx_.characterizations().get(app);
    const double novar = ctx_.novarPerf(app);
    const KnobSpace grid = environmentCaps(env).knobSpace();

    CoreOutcome out;
    double wSum = 0.0;

    if (env == EnvironmentKind::Baseline ||
        env == EnvironmentKind::NoVar) {
        // Non-adaptive references: fixed frequency, no checker.
        OperatingPoint op = nominalOperatingPoint(cfg.process);
        if (env == EnvironmentKind::Baseline) {
            op.freq = grid.freq.quantizeDown(model.baselineFrequency());
        }
        for (const PhaseData &phase : chr.phases) {
            const CoreEvaluation ev =
                model.evaluate(op, phase.chr.act, thC);
            const double perf =
                performance(op.freq, 0.0, phase.chr.perfFull);
            wSum += phase.weight;
            out.freq += phase.weight * op.freq;
            out.perf += phase.weight * perf;
            out.power += phase.weight * ev.totalPowerW;
        }
    } else {
        const EnvCapabilities caps = environmentCaps(env);
        std::unique_ptr<ExhaustiveOptimizer> exh;
        std::unique_ptr<FuzzyOptimizer> fuzzy;
        SubsystemOptimizer *sub = nullptr;
        if (scheme == AdaptScheme::FuzzyDyn) {
            fuzzy = std::make_unique<FuzzyOptimizer>(
                ctx_.coreFuzzy(chipIndex_, core, caps));
            sub = fuzzy.get();
        } else {
            exh = std::make_unique<ExhaustiveOptimizer>(caps,
                                                        cfg.constraints);
            sub = exh.get();
        }
        DynamicController ctl(*sub, caps, cfg.constraints, cfg.recovery);

        for (std::size_t p = 0; p < chr.phases.size(); ++p) {
            const PhaseData &phase = chr.phases[p];
            PhaseAdaptation ad =
                ctl.adaptPhase(model, p, phase.chr, thC);
            // Chip-level throttle: back off the core's clock when the
            // package is saturated (TH_MAX enforcement).
            if (throttleSteps > 0) {
                OperatingPoint op = ad.op;
                op.freq = std::max(grid.freq.lo(),
                                   grid.freq.quantizeDown(
                                       op.freq - throttleSteps *
                                                     grid.freq.step()));
                ad.op = op;
                ad.eval = model.evaluate(op, phase.chr.act, thC);
            }
            const PerfInputs &in = ad.op.smallQueue
                                       ? phase.chr.perfSmall
                                       : phase.chr.perfFull;
            const double perf = performance(
                ad.op.freq, ad.eval.pePerInstruction, in);
            const double power =
                ad.eval.totalPowerW +
                cfg.powerCal.checkerPowerW *
                    (ad.op.freq / cfg.process.freqNominal);
            wSum += phase.weight;
            out.freq += phase.weight * ad.op.freq;
            out.perf += phase.weight * perf;
            out.power += phase.weight * power;
        }
    }

    out.freq /= wSum;
    out.perf = out.perf / wSum / novar;
    out.power /= wSum;
    return out;
}

CmpRunResult
CmpSystem::runMix(const WorkloadMix &mix, EnvironmentKind env,
                  AdaptScheme scheme)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.cmp.run_mix");
    static Counter &iterations =
        StatRegistry::global().counter("chip.thermal.iterations");
    static Counter &throttles =
        StatRegistry::global().counter("chip.thermal.throttle_steps");
    static Gauge &heatsink =
        StatRegistry::global().gauge("chip.thermal.heatsink_c");
    ScopedTimer scope(timer);
    ScopedSpan span("cmp.run_mix");
    span.arg("apps", mix.size());
    span.arg("env", environmentName(env));
    StatRegistry::global().counter("chip.mix_runs").inc();

    const ExperimentConfig &cfg = ctx_.config();
    CmpRunResult result;
    double thC = 60.0;
    unsigned throttle = 0;

    // Outer loop: per-core adaptation at the current TH, then update
    // TH from the chip's total power; throttle globally if TH_MAX is
    // exceeded even at the fixed point.  The budget covers the worst
    // case of stepping through the full throttle range.
    for (int iter = 0; iter < 120; ++iter) {
        iterations.inc();
        double totalPower = 0.0;
        std::array<CoreOutcome, 4> outcomes;
        for (std::size_t core = 0; core < 4; ++core) {
            outcomes[core] = runCoreAtTh(core, *mix[core], env, scheme,
                                         thC, throttle);
            totalPower += outcomes[core].power;
        }

        const double thNext = heatsink_.tempC(totalPower);
        const bool converged = std::abs(thNext - thC) < 0.5;
        thC = thNext;

        if (converged || iter == 119) {
            if (thC > cfg.constraints.thMaxC + 0.25 && throttle < 16) {
                ++throttle;
                ++result.throttleSteps;
                throttles.inc();
                continue;   // re-run cooler
            }
            heatsink.set(thC);
            for (std::size_t core = 0; core < 4; ++core) {
                result.coreFreqRel[core] =
                    outcomes[core].freq / cfg.process.freqNominal;
                result.corePerfRel[core] = outcomes[core].perf;
                result.corePowerW[core] = outcomes[core].power;
                result.throughputRel += outcomes[core].perf / 4.0;
            }
            result.chipPowerW = totalPower;
            result.heatsinkC = thC;
            return result;
        }
    }
    EVAL_PANIC("CMP thermal loop failed to converge");
}

} // namespace eval
