/**
 * @file
 * Chip-multiprocessor coordination (the paper models a 4-core CMP,
 * Sec 5): each core adapts independently with its own controller and
 * its private 30W budget, but all four share the heat sink — so the
 * heat-sink temperature TH couples them.  The chip-level loop solves
 * this coupling and enforces the TH_MAX constraint by globally
 * throttling when the package saturates.
 *
 * The cores have private L2s and hyper-transport links; with no shared
 * cache there is no inter-core memory interference to model, so the
 * coupling is purely thermal/power (as in the paper's setup).
 */

#pragma once

#include <array>
#include <memory>

#include "core/environment.hh"

namespace eval {

/** A multiprogrammed workload: one application per core. */
using WorkloadMix = std::array<const AppProfile *, 4>;

/** Named mixes used by benches and tests. */
WorkloadMix intHeavyMix();
WorkloadMix fpHeavyMix();
WorkloadMix mixedMix();
WorkloadMix memBoundMix();

/** Result of running one mix on one chip. */
struct CmpRunResult
{
    std::array<double, 4> coreFreqRel{};
    std::array<double, 4> corePerfRel{};
    std::array<double, 4> corePowerW{};
    double chipPowerW = 0.0;
    double heatsinkC = 0.0;
    /** Global 100 MHz throttle steps applied to honour TH_MAX. */
    unsigned throttleSteps = 0;
    /** Mean of the per-core relative performance. */
    double throughputRel = 0.0;
};

/** Chip-level adaptation driver for one manufactured die. */
class CmpSystem
{
  public:
    /**
     * @param ctx       experiment context (owns chips and calibration)
     * @param chipIndex which die to drive
     */
    CmpSystem(ExperimentContext &ctx, std::size_t chipIndex);

    /**
     * Run a 4-app mix under one environment/scheme: per-core
     * adaptation iterated with the shared heat-sink temperature until
     * consistent, then TH_MAX enforced by global throttling.
     */
    CmpRunResult runMix(const WorkloadMix &mix, EnvironmentKind env,
                        AdaptScheme scheme);

  private:
    struct CoreOutcome
    {
        double freq = 0.0;
        double perf = 0.0;
        double power = 0.0;
    };

    /** One core's steady response at a given heat-sink temperature. */
    CoreOutcome runCoreAtTh(std::size_t core, const AppProfile &app,
                            EnvironmentKind env, AdaptScheme scheme,
                            double thC, unsigned throttleSteps);

    ExperimentContext &ctx_;
    std::size_t chipIndex_;
    HeatsinkModel heatsink_;
};

} // namespace eval

