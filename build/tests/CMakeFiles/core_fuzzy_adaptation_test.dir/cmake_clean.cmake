file(REMOVE_RECURSE
  "CMakeFiles/core_fuzzy_adaptation_test.dir/core/fuzzy_adaptation_test.cpp.o"
  "CMakeFiles/core_fuzzy_adaptation_test.dir/core/fuzzy_adaptation_test.cpp.o.d"
  "core_fuzzy_adaptation_test"
  "core_fuzzy_adaptation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fuzzy_adaptation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
