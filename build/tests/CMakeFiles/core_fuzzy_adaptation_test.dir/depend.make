# Empty dependencies file for core_fuzzy_adaptation_test.
# This may be replaced when dependencies are built.
