# Empty compiler generated dependencies file for variation_chip_test.
# This may be replaced when dependencies are built.
