file(REMOVE_RECURSE
  "CMakeFiles/variation_chip_test.dir/variation/chip_test.cpp.o"
  "CMakeFiles/variation_chip_test.dir/variation/chip_test.cpp.o.d"
  "variation_chip_test"
  "variation_chip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
