file(REMOVE_RECURSE
  "CMakeFiles/core_eq5_validation_test.dir/core/eq5_validation_test.cpp.o"
  "CMakeFiles/core_eq5_validation_test.dir/core/eq5_validation_test.cpp.o.d"
  "core_eq5_validation_test"
  "core_eq5_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_eq5_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
