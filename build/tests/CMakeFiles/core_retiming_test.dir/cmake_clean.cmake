file(REMOVE_RECURSE
  "CMakeFiles/core_retiming_test.dir/core/retiming_test.cpp.o"
  "CMakeFiles/core_retiming_test.dir/core/retiming_test.cpp.o.d"
  "core_retiming_test"
  "core_retiming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_retiming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
