# Empty dependencies file for core_retiming_test.
# This may be replaced when dependencies are built.
