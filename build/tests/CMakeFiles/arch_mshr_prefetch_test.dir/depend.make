# Empty dependencies file for arch_mshr_prefetch_test.
# This may be replaced when dependencies are built.
