file(REMOVE_RECURSE
  "CMakeFiles/arch_mshr_prefetch_test.dir/arch/mshr_prefetch_test.cpp.o"
  "CMakeFiles/arch_mshr_prefetch_test.dir/arch/mshr_prefetch_test.cpp.o.d"
  "arch_mshr_prefetch_test"
  "arch_mshr_prefetch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_mshr_prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
