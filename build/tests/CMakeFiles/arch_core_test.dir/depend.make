# Empty dependencies file for arch_core_test.
# This may be replaced when dependencies are built.
