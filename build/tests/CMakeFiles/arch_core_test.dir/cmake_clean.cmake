file(REMOVE_RECURSE
  "CMakeFiles/arch_core_test.dir/arch/core_test.cpp.o"
  "CMakeFiles/arch_core_test.dir/arch/core_test.cpp.o.d"
  "arch_core_test"
  "arch_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
