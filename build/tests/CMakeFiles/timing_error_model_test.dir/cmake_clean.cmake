file(REMOVE_RECURSE
  "CMakeFiles/timing_error_model_test.dir/timing/error_model_test.cpp.o"
  "CMakeFiles/timing_error_model_test.dir/timing/error_model_test.cpp.o.d"
  "timing_error_model_test"
  "timing_error_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_error_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
