file(REMOVE_RECURSE
  "CMakeFiles/timing_path_params_test.dir/timing/path_params_test.cpp.o"
  "CMakeFiles/timing_path_params_test.dir/timing/path_params_test.cpp.o.d"
  "timing_path_params_test"
  "timing_path_params_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_path_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
