# Empty compiler generated dependencies file for timing_path_params_test.
# This may be replaced when dependencies are built.
