# Empty dependencies file for variation_field_test.
# This may be replaced when dependencies are built.
