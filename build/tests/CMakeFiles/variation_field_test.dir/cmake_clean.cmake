file(REMOVE_RECURSE
  "CMakeFiles/variation_field_test.dir/variation/correlated_field_test.cpp.o"
  "CMakeFiles/variation_field_test.dir/variation/correlated_field_test.cpp.o.d"
  "variation_field_test"
  "variation_field_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
