# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for variation_field_test.
