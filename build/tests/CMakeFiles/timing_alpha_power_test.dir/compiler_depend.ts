# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for timing_alpha_power_test.
