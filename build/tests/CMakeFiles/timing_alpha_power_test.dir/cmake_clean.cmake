file(REMOVE_RECURSE
  "CMakeFiles/timing_alpha_power_test.dir/timing/alpha_power_test.cpp.o"
  "CMakeFiles/timing_alpha_power_test.dir/timing/alpha_power_test.cpp.o.d"
  "timing_alpha_power_test"
  "timing_alpha_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_alpha_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
