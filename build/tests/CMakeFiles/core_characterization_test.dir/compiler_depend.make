# Empty compiler generated dependencies file for core_characterization_test.
# This may be replaced when dependencies are built.
