file(REMOVE_RECURSE
  "CMakeFiles/core_characterization_test.dir/core/characterization_test.cpp.o"
  "CMakeFiles/core_characterization_test.dir/core/characterization_test.cpp.o.d"
  "core_characterization_test"
  "core_characterization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_characterization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
