file(REMOVE_RECURSE
  "CMakeFiles/core_environment_test.dir/core/environment_test.cpp.o"
  "CMakeFiles/core_environment_test.dir/core/environment_test.cpp.o.d"
  "core_environment_test"
  "core_environment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
