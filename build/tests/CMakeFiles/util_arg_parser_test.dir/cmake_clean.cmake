file(REMOVE_RECURSE
  "CMakeFiles/util_arg_parser_test.dir/util/arg_parser_test.cpp.o"
  "CMakeFiles/util_arg_parser_test.dir/util/arg_parser_test.cpp.o.d"
  "util_arg_parser_test"
  "util_arg_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_arg_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
