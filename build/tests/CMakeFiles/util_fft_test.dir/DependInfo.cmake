
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/fft_test.cpp" "tests/CMakeFiles/util_fft_test.dir/util/fft_test.cpp.o" "gcc" "tests/CMakeFiles/util_fft_test.dir/util/fft_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cmp/CMakeFiles/eval_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eval_core.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/eval_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eval_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/eval_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/eval_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/eval_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eval_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzy/CMakeFiles/eval_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/phase/CMakeFiles/eval_phase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
