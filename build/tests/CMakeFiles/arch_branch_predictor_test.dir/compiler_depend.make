# Empty compiler generated dependencies file for arch_branch_predictor_test.
# This may be replaced when dependencies are built.
