file(REMOVE_RECURSE
  "CMakeFiles/arch_branch_predictor_test.dir/arch/branch_predictor_test.cpp.o"
  "CMakeFiles/arch_branch_predictor_test.dir/arch/branch_predictor_test.cpp.o.d"
  "arch_branch_predictor_test"
  "arch_branch_predictor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_branch_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
