file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_regressors_test.dir/fuzzy/regressors_test.cpp.o"
  "CMakeFiles/fuzzy_regressors_test.dir/fuzzy/regressors_test.cpp.o.d"
  "fuzzy_regressors_test"
  "fuzzy_regressors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_regressors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
