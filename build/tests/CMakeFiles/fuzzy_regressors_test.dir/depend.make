# Empty dependencies file for fuzzy_regressors_test.
# This may be replaced when dependencies are built.
