# Empty dependencies file for workload_trace_file_test.
# This may be replaced when dependencies are built.
