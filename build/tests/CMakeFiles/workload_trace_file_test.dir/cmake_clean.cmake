file(REMOVE_RECURSE
  "CMakeFiles/workload_trace_file_test.dir/workload/trace_file_test.cpp.o"
  "CMakeFiles/workload_trace_file_test.dir/workload/trace_file_test.cpp.o.d"
  "workload_trace_file_test"
  "workload_trace_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_trace_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
