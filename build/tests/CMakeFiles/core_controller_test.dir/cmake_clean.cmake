file(REMOVE_RECURSE
  "CMakeFiles/core_controller_test.dir/core/controller_test.cpp.o"
  "CMakeFiles/core_controller_test.dir/core/controller_test.cpp.o.d"
  "core_controller_test"
  "core_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
