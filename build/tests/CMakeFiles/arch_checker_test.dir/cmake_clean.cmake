file(REMOVE_RECURSE
  "CMakeFiles/arch_checker_test.dir/arch/checker_test.cpp.o"
  "CMakeFiles/arch_checker_test.dir/arch/checker_test.cpp.o.d"
  "arch_checker_test"
  "arch_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
