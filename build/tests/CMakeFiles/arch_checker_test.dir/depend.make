# Empty dependencies file for arch_checker_test.
# This may be replaced when dependencies are built.
