file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_test.dir/fuzzy/fuzzy_test.cpp.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy/fuzzy_test.cpp.o.d"
  "fuzzy_test"
  "fuzzy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
