# Empty dependencies file for core_area_model_test.
# This may be replaced when dependencies are built.
