file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_serialization_test.dir/fuzzy/serialization_test.cpp.o"
  "CMakeFiles/fuzzy_serialization_test.dir/fuzzy/serialization_test.cpp.o.d"
  "fuzzy_serialization_test"
  "fuzzy_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
