# Empty compiler generated dependencies file for fuzzy_serialization_test.
# This may be replaced when dependencies are built.
