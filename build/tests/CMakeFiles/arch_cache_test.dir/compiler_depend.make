# Empty compiler generated dependencies file for arch_cache_test.
# This may be replaced when dependencies are built.
