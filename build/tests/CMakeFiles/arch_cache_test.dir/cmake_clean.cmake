file(REMOVE_RECURSE
  "CMakeFiles/arch_cache_test.dir/arch/cache_test.cpp.o"
  "CMakeFiles/arch_cache_test.dir/arch/cache_test.cpp.o.d"
  "arch_cache_test"
  "arch_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
