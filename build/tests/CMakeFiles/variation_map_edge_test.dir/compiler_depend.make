# Empty compiler generated dependencies file for variation_map_edge_test.
# This may be replaced when dependencies are built.
