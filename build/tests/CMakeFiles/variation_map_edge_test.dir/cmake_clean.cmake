file(REMOVE_RECURSE
  "CMakeFiles/variation_map_edge_test.dir/variation/variation_map_edge_test.cpp.o"
  "CMakeFiles/variation_map_edge_test.dir/variation/variation_map_edge_test.cpp.o.d"
  "variation_map_edge_test"
  "variation_map_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_map_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
