# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for variation_map_edge_test.
