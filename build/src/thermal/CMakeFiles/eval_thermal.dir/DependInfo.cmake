
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/sensors.cc" "src/thermal/CMakeFiles/eval_thermal.dir/sensors.cc.o" "gcc" "src/thermal/CMakeFiles/eval_thermal.dir/sensors.cc.o.d"
  "/root/repo/src/thermal/thermal_model.cc" "src/thermal/CMakeFiles/eval_thermal.dir/thermal_model.cc.o" "gcc" "src/thermal/CMakeFiles/eval_thermal.dir/thermal_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/eval_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/eval_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/eval_variation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
