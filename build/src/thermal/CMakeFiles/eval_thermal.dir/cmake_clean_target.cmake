file(REMOVE_RECURSE
  "libeval_thermal.a"
)
