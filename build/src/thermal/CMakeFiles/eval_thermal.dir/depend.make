# Empty dependencies file for eval_thermal.
# This may be replaced when dependencies are built.
