file(REMOVE_RECURSE
  "CMakeFiles/eval_thermal.dir/sensors.cc.o"
  "CMakeFiles/eval_thermal.dir/sensors.cc.o.d"
  "CMakeFiles/eval_thermal.dir/thermal_model.cc.o"
  "CMakeFiles/eval_thermal.dir/thermal_model.cc.o.d"
  "libeval_thermal.a"
  "libeval_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
