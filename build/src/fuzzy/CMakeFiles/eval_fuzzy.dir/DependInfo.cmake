
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzzy/fuzzy_controller.cc" "src/fuzzy/CMakeFiles/eval_fuzzy.dir/fuzzy_controller.cc.o" "gcc" "src/fuzzy/CMakeFiles/eval_fuzzy.dir/fuzzy_controller.cc.o.d"
  "/root/repo/src/fuzzy/regressors.cc" "src/fuzzy/CMakeFiles/eval_fuzzy.dir/regressors.cc.o" "gcc" "src/fuzzy/CMakeFiles/eval_fuzzy.dir/regressors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
