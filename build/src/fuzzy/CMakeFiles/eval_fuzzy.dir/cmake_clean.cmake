file(REMOVE_RECURSE
  "CMakeFiles/eval_fuzzy.dir/fuzzy_controller.cc.o"
  "CMakeFiles/eval_fuzzy.dir/fuzzy_controller.cc.o.d"
  "CMakeFiles/eval_fuzzy.dir/regressors.cc.o"
  "CMakeFiles/eval_fuzzy.dir/regressors.cc.o.d"
  "libeval_fuzzy.a"
  "libeval_fuzzy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
