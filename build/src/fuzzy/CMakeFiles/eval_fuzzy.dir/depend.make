# Empty dependencies file for eval_fuzzy.
# This may be replaced when dependencies are built.
