file(REMOVE_RECURSE
  "libeval_fuzzy.a"
)
