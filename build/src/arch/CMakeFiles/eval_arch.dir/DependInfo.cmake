
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/branch_predictor.cc" "src/arch/CMakeFiles/eval_arch.dir/branch_predictor.cc.o" "gcc" "src/arch/CMakeFiles/eval_arch.dir/branch_predictor.cc.o.d"
  "/root/repo/src/arch/cache.cc" "src/arch/CMakeFiles/eval_arch.dir/cache.cc.o" "gcc" "src/arch/CMakeFiles/eval_arch.dir/cache.cc.o.d"
  "/root/repo/src/arch/checker.cc" "src/arch/CMakeFiles/eval_arch.dir/checker.cc.o" "gcc" "src/arch/CMakeFiles/eval_arch.dir/checker.cc.o.d"
  "/root/repo/src/arch/core.cc" "src/arch/CMakeFiles/eval_arch.dir/core.cc.o" "gcc" "src/arch/CMakeFiles/eval_arch.dir/core.cc.o.d"
  "/root/repo/src/arch/isa.cc" "src/arch/CMakeFiles/eval_arch.dir/isa.cc.o" "gcc" "src/arch/CMakeFiles/eval_arch.dir/isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/variation/CMakeFiles/eval_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
