file(REMOVE_RECURSE
  "libeval_arch.a"
)
