# Empty dependencies file for eval_arch.
# This may be replaced when dependencies are built.
