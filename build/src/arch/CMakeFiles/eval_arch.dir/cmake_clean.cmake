file(REMOVE_RECURSE
  "CMakeFiles/eval_arch.dir/branch_predictor.cc.o"
  "CMakeFiles/eval_arch.dir/branch_predictor.cc.o.d"
  "CMakeFiles/eval_arch.dir/cache.cc.o"
  "CMakeFiles/eval_arch.dir/cache.cc.o.d"
  "CMakeFiles/eval_arch.dir/checker.cc.o"
  "CMakeFiles/eval_arch.dir/checker.cc.o.d"
  "CMakeFiles/eval_arch.dir/core.cc.o"
  "CMakeFiles/eval_arch.dir/core.cc.o.d"
  "CMakeFiles/eval_arch.dir/isa.cc.o"
  "CMakeFiles/eval_arch.dir/isa.cc.o.d"
  "libeval_arch.a"
  "libeval_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
