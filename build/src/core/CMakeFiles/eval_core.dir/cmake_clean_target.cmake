file(REMOVE_RECURSE
  "libeval_core.a"
)
