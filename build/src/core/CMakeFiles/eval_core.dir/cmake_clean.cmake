file(REMOVE_RECURSE
  "CMakeFiles/eval_core.dir/area_model.cc.o"
  "CMakeFiles/eval_core.dir/area_model.cc.o.d"
  "CMakeFiles/eval_core.dir/characterization.cc.o"
  "CMakeFiles/eval_core.dir/characterization.cc.o.d"
  "CMakeFiles/eval_core.dir/controller.cc.o"
  "CMakeFiles/eval_core.dir/controller.cc.o.d"
  "CMakeFiles/eval_core.dir/environment.cc.o"
  "CMakeFiles/eval_core.dir/environment.cc.o.d"
  "CMakeFiles/eval_core.dir/eval_params.cc.o"
  "CMakeFiles/eval_core.dir/eval_params.cc.o.d"
  "CMakeFiles/eval_core.dir/fuzzy_adaptation.cc.o"
  "CMakeFiles/eval_core.dir/fuzzy_adaptation.cc.o.d"
  "CMakeFiles/eval_core.dir/optimizer.cc.o"
  "CMakeFiles/eval_core.dir/optimizer.cc.o.d"
  "CMakeFiles/eval_core.dir/perf_model.cc.o"
  "CMakeFiles/eval_core.dir/perf_model.cc.o.d"
  "CMakeFiles/eval_core.dir/retiming.cc.o"
  "CMakeFiles/eval_core.dir/retiming.cc.o.d"
  "CMakeFiles/eval_core.dir/subsystem_model.cc.o"
  "CMakeFiles/eval_core.dir/subsystem_model.cc.o.d"
  "libeval_core.a"
  "libeval_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
