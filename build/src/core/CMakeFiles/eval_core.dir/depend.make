# Empty dependencies file for eval_core.
# This may be replaced when dependencies are built.
