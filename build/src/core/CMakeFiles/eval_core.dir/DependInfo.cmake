
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_model.cc" "src/core/CMakeFiles/eval_core.dir/area_model.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/area_model.cc.o.d"
  "/root/repo/src/core/characterization.cc" "src/core/CMakeFiles/eval_core.dir/characterization.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/characterization.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/eval_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/controller.cc.o.d"
  "/root/repo/src/core/environment.cc" "src/core/CMakeFiles/eval_core.dir/environment.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/environment.cc.o.d"
  "/root/repo/src/core/eval_params.cc" "src/core/CMakeFiles/eval_core.dir/eval_params.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/eval_params.cc.o.d"
  "/root/repo/src/core/fuzzy_adaptation.cc" "src/core/CMakeFiles/eval_core.dir/fuzzy_adaptation.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/fuzzy_adaptation.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/eval_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/perf_model.cc" "src/core/CMakeFiles/eval_core.dir/perf_model.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/perf_model.cc.o.d"
  "/root/repo/src/core/retiming.cc" "src/core/CMakeFiles/eval_core.dir/retiming.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/retiming.cc.o.d"
  "/root/repo/src/core/subsystem_model.cc" "src/core/CMakeFiles/eval_core.dir/subsystem_model.cc.o" "gcc" "src/core/CMakeFiles/eval_core.dir/subsystem_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/thermal/CMakeFiles/eval_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eval_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/eval_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/eval_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/eval_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eval_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzy/CMakeFiles/eval_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/phase/CMakeFiles/eval_phase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
