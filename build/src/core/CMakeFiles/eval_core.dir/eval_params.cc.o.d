src/core/CMakeFiles/eval_core.dir/eval_params.cc.o: \
 /root/repo/src/core/eval_params.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/eval_params.hh
