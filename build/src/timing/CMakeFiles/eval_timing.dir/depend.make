# Empty dependencies file for eval_timing.
# This may be replaced when dependencies are built.
