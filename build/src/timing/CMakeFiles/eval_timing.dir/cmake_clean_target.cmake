file(REMOVE_RECURSE
  "libeval_timing.a"
)
