
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/alpha_power.cc" "src/timing/CMakeFiles/eval_timing.dir/alpha_power.cc.o" "gcc" "src/timing/CMakeFiles/eval_timing.dir/alpha_power.cc.o.d"
  "/root/repo/src/timing/error_model.cc" "src/timing/CMakeFiles/eval_timing.dir/error_model.cc.o" "gcc" "src/timing/CMakeFiles/eval_timing.dir/error_model.cc.o.d"
  "/root/repo/src/timing/path_population.cc" "src/timing/CMakeFiles/eval_timing.dir/path_population.cc.o" "gcc" "src/timing/CMakeFiles/eval_timing.dir/path_population.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/variation/CMakeFiles/eval_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
