file(REMOVE_RECURSE
  "CMakeFiles/eval_timing.dir/alpha_power.cc.o"
  "CMakeFiles/eval_timing.dir/alpha_power.cc.o.d"
  "CMakeFiles/eval_timing.dir/error_model.cc.o"
  "CMakeFiles/eval_timing.dir/error_model.cc.o.d"
  "CMakeFiles/eval_timing.dir/path_population.cc.o"
  "CMakeFiles/eval_timing.dir/path_population.cc.o.d"
  "libeval_timing.a"
  "libeval_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
