file(REMOVE_RECURSE
  "CMakeFiles/eval_variation.dir/chip.cc.o"
  "CMakeFiles/eval_variation.dir/chip.cc.o.d"
  "CMakeFiles/eval_variation.dir/correlated_field.cc.o"
  "CMakeFiles/eval_variation.dir/correlated_field.cc.o.d"
  "CMakeFiles/eval_variation.dir/floorplan.cc.o"
  "CMakeFiles/eval_variation.dir/floorplan.cc.o.d"
  "CMakeFiles/eval_variation.dir/variation_map.cc.o"
  "CMakeFiles/eval_variation.dir/variation_map.cc.o.d"
  "libeval_variation.a"
  "libeval_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
