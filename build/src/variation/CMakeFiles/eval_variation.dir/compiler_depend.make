# Empty compiler generated dependencies file for eval_variation.
# This may be replaced when dependencies are built.
