file(REMOVE_RECURSE
  "libeval_variation.a"
)
