
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variation/chip.cc" "src/variation/CMakeFiles/eval_variation.dir/chip.cc.o" "gcc" "src/variation/CMakeFiles/eval_variation.dir/chip.cc.o.d"
  "/root/repo/src/variation/correlated_field.cc" "src/variation/CMakeFiles/eval_variation.dir/correlated_field.cc.o" "gcc" "src/variation/CMakeFiles/eval_variation.dir/correlated_field.cc.o.d"
  "/root/repo/src/variation/floorplan.cc" "src/variation/CMakeFiles/eval_variation.dir/floorplan.cc.o" "gcc" "src/variation/CMakeFiles/eval_variation.dir/floorplan.cc.o.d"
  "/root/repo/src/variation/variation_map.cc" "src/variation/CMakeFiles/eval_variation.dir/variation_map.cc.o" "gcc" "src/variation/CMakeFiles/eval_variation.dir/variation_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
