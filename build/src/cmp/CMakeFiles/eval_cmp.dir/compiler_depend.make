# Empty compiler generated dependencies file for eval_cmp.
# This may be replaced when dependencies are built.
