file(REMOVE_RECURSE
  "libeval_cmp.a"
)
