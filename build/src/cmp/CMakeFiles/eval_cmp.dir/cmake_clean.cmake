file(REMOVE_RECURSE
  "CMakeFiles/eval_cmp.dir/cmp_system.cc.o"
  "CMakeFiles/eval_cmp.dir/cmp_system.cc.o.d"
  "libeval_cmp.a"
  "libeval_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
