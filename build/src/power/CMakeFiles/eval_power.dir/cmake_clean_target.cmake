file(REMOVE_RECURSE
  "libeval_power.a"
)
