
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/knobs.cc" "src/power/CMakeFiles/eval_power.dir/knobs.cc.o" "gcc" "src/power/CMakeFiles/eval_power.dir/knobs.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/power/CMakeFiles/eval_power.dir/power_model.cc.o" "gcc" "src/power/CMakeFiles/eval_power.dir/power_model.cc.o.d"
  "/root/repo/src/power/vt0_calibration.cc" "src/power/CMakeFiles/eval_power.dir/vt0_calibration.cc.o" "gcc" "src/power/CMakeFiles/eval_power.dir/vt0_calibration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timing/CMakeFiles/eval_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/eval_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eval_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
