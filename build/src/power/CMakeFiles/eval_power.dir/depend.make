# Empty dependencies file for eval_power.
# This may be replaced when dependencies are built.
