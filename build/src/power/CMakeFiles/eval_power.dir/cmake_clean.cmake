file(REMOVE_RECURSE
  "CMakeFiles/eval_power.dir/knobs.cc.o"
  "CMakeFiles/eval_power.dir/knobs.cc.o.d"
  "CMakeFiles/eval_power.dir/power_model.cc.o"
  "CMakeFiles/eval_power.dir/power_model.cc.o.d"
  "CMakeFiles/eval_power.dir/vt0_calibration.cc.o"
  "CMakeFiles/eval_power.dir/vt0_calibration.cc.o.d"
  "libeval_power.a"
  "libeval_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
