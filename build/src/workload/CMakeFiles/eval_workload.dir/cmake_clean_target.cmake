file(REMOVE_RECURSE
  "libeval_workload.a"
)
