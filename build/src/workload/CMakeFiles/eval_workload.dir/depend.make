# Empty dependencies file for eval_workload.
# This may be replaced when dependencies are built.
