file(REMOVE_RECURSE
  "CMakeFiles/eval_workload.dir/generator.cc.o"
  "CMakeFiles/eval_workload.dir/generator.cc.o.d"
  "CMakeFiles/eval_workload.dir/profile.cc.o"
  "CMakeFiles/eval_workload.dir/profile.cc.o.d"
  "CMakeFiles/eval_workload.dir/trace_file.cc.o"
  "CMakeFiles/eval_workload.dir/trace_file.cc.o.d"
  "libeval_workload.a"
  "libeval_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
