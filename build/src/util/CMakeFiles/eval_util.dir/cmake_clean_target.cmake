file(REMOVE_RECURSE
  "libeval_util.a"
)
