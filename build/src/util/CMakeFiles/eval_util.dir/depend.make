# Empty dependencies file for eval_util.
# This may be replaced when dependencies are built.
