file(REMOVE_RECURSE
  "CMakeFiles/eval_util.dir/arg_parser.cc.o"
  "CMakeFiles/eval_util.dir/arg_parser.cc.o.d"
  "CMakeFiles/eval_util.dir/config.cc.o"
  "CMakeFiles/eval_util.dir/config.cc.o.d"
  "CMakeFiles/eval_util.dir/csv.cc.o"
  "CMakeFiles/eval_util.dir/csv.cc.o.d"
  "CMakeFiles/eval_util.dir/fft.cc.o"
  "CMakeFiles/eval_util.dir/fft.cc.o.d"
  "CMakeFiles/eval_util.dir/logging.cc.o"
  "CMakeFiles/eval_util.dir/logging.cc.o.d"
  "CMakeFiles/eval_util.dir/math_utils.cc.o"
  "CMakeFiles/eval_util.dir/math_utils.cc.o.d"
  "CMakeFiles/eval_util.dir/random.cc.o"
  "CMakeFiles/eval_util.dir/random.cc.o.d"
  "CMakeFiles/eval_util.dir/statistics.cc.o"
  "CMakeFiles/eval_util.dir/statistics.cc.o.d"
  "CMakeFiles/eval_util.dir/table.cc.o"
  "CMakeFiles/eval_util.dir/table.cc.o.d"
  "libeval_util.a"
  "libeval_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
