file(REMOVE_RECURSE
  "CMakeFiles/eval_phase.dir/phase_detector.cc.o"
  "CMakeFiles/eval_phase.dir/phase_detector.cc.o.d"
  "libeval_phase.a"
  "libeval_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
