file(REMOVE_RECURSE
  "libeval_phase.a"
)
