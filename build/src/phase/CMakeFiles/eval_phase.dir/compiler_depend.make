# Empty compiler generated dependencies file for eval_phase.
# This may be replaced when dependencies are built.
