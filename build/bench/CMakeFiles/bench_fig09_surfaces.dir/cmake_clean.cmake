file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_surfaces.dir/bench_fig09_surfaces.cpp.o"
  "CMakeFiles/bench_fig09_surfaces.dir/bench_fig09_surfaces.cpp.o.d"
  "bench_fig09_surfaces"
  "bench_fig09_surfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_surfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
