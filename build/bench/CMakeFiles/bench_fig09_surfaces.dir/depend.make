# Empty dependencies file for bench_fig09_surfaces.
# This may be replaced when dependencies are built.
