# Empty compiler generated dependencies file for bench_fig13_outcomes.
# This may be replaced when dependencies are built.
