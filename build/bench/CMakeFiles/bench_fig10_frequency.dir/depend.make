# Empty dependencies file for bench_fig10_frequency.
# This may be replaced when dependencies are built.
