file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_checker.dir/bench_ablation_checker.cpp.o"
  "CMakeFiles/bench_ablation_checker.dir/bench_ablation_checker.cpp.o.d"
  "bench_ablation_checker"
  "bench_ablation_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
