file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_vats.dir/bench_fig01_vats.cpp.o"
  "CMakeFiles/bench_fig01_vats.dir/bench_fig01_vats.cpp.o.d"
  "bench_fig01_vats"
  "bench_fig01_vats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_vats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
