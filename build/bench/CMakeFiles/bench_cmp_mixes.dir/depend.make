# Empty dependencies file for bench_cmp_mixes.
# This may be replaced when dependencies are built.
