file(REMOVE_RECURSE
  "CMakeFiles/bench_cmp_mixes.dir/bench_cmp_mixes.cpp.o"
  "CMakeFiles/bench_cmp_mixes.dir/bench_cmp_mixes.cpp.o.d"
  "bench_cmp_mixes"
  "bench_cmp_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
