file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pemax.dir/bench_ablation_pemax.cpp.o"
  "CMakeFiles/bench_ablation_pemax.dir/bench_ablation_pemax.cpp.o.d"
  "bench_ablation_pemax"
  "bench_ablation_pemax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pemax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
