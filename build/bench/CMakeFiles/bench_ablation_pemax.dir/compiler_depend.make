# Empty compiler generated dependencies file for bench_ablation_pemax.
# This may be replaced when dependencies are built.
