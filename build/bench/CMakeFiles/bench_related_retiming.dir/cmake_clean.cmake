file(REMOVE_RECURSE
  "CMakeFiles/bench_related_retiming.dir/bench_related_retiming.cpp.o"
  "CMakeFiles/bench_related_retiming.dir/bench_related_retiming.cpp.o.d"
  "bench_related_retiming"
  "bench_related_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
