# Empty compiler generated dependencies file for bench_related_retiming.
# This may be replaced when dependencies are built.
