# Empty dependencies file for chip_binning.
# This may be replaced when dependencies are built.
