file(REMOVE_RECURSE
  "CMakeFiles/chip_binning.dir/chip_binning.cpp.o"
  "CMakeFiles/chip_binning.dir/chip_binning.cpp.o.d"
  "chip_binning"
  "chip_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
