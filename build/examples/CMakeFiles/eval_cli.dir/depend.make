# Empty dependencies file for eval_cli.
# This may be replaced when dependencies are built.
