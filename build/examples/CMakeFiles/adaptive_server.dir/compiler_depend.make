# Empty compiler generated dependencies file for adaptive_server.
# This may be replaced when dependencies are built.
