file(REMOVE_RECURSE
  "CMakeFiles/adaptive_server.dir/adaptive_server.cpp.o"
  "CMakeFiles/adaptive_server.dir/adaptive_server.cpp.o.d"
  "adaptive_server"
  "adaptive_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
