# Empty dependencies file for variation_atlas.
# This may be replaced when dependencies are built.
