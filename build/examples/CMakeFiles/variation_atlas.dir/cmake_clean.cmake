file(REMOVE_RECURSE
  "CMakeFiles/variation_atlas.dir/variation_atlas.cpp.o"
  "CMakeFiles/variation_atlas.dir/variation_atlas.cpp.o.d"
  "variation_atlas"
  "variation_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
