/**
 * @file
 * benchtrack — the BENCH_JSON regression tracker.
 *
 * Every bench prints one `BENCH_JSON {...}` footer line (see
 * bench/bench_common.hh).  benchtrack turns those one-off lines into
 * a history and a verdict:
 *
 *   benchtrack ingest --history DIR [FILE...]
 *       parse BENCH_JSON lines (raw bench stdout or bare JSONL) and
 *       append one entry per bench to DIR/<bench>.jsonl
 *   benchtrack report --history DIR [--window N] [--threshold PCT]
 *                     [--markdown FILE] [--json FILE] [--gate]
 *       compare each bench's newest entry against the mean of the
 *       previous N entries; classify every numeric metric as
 *       new / noise / improvement / regression and render a report.
 *
 * Two metrics carry a gating direction: `wall_clock_s` is
 * lower-is-better, `throughput_chips_per_s` (the live-telemetry
 * chips/sec figure, see src/obs/) is higher-is-better.  The domain
 * metrics (frequencies, speedups, ...) are informational: whether
 * "bigger" is better depends on the metric, and correctness of those
 * values is the golden tests' job, not benchtrack's.
 *
 * Exit codes (report): 0 ok, 1 gated regression found (with --gate),
 * 2 usage/IO error.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eval {
namespace benchtrack {

/** One bench run, as parsed from a BENCH_JSON footer line. */
struct Entry
{
    std::string bench;
    double wallClockS = 0.0;
    std::int64_t threads = 0;
    std::int64_t peakRssKb = 0;         ///< 0 = footer predates field
    /** Numeric metrics only; string metrics are dropped on ingest. */
    std::map<std::string, double> metrics;
    /** Per-span self time (ms, keyed by span name) from the footer's
     *  compact `span_self_ms` map; empty when the bench ran without
     *  tracing (or predates the field).  Not compared as metrics —
     *  this is the evidence the wall-clock blame is computed from. */
    std::map<std::string, double> spanSelfMs;
};

/** Parse one line.  Accepts both the raw stdout form
 *  ("BENCH_JSON {...}") and the bare JSONL object form; returns
 *  false (without touching @p out) for anything else. */
bool parseEntry(const std::string &line, Entry &out);

/** Parse every footer in @p text (a file's contents). */
std::vector<Entry> parseEntries(const std::string &text);

/** Append entries to per-bench JSONL files under @p historyDir
 *  (created if missing).  Returns the number appended. */
std::size_t ingest(const std::vector<Entry> &entries,
                   const std::string &historyDir);

/** Load one bench's history file (oldest first). */
std::vector<Entry> loadHistory(const std::string &path);

/** Verdict for one metric of one bench. */
enum class Delta { New, Noise, Improvement, Regression };

const char *deltaName(Delta d);

/** Gating direction of a metric: which way a beyond-threshold move
 *  counts as a regression.  None = informational only. */
enum class GateDir { None, LowerBetter, HigherBetter };

/** The built-in gating policy (wall_clock_s lower-is-better,
 *  throughput_chips_per_s higher-is-better, everything else None). */
GateDir gateDir(const std::string &metric);

const char *gateDirName(GateDir d);

struct MetricReport
{
    std::string bench;
    std::string metric;
    double current = 0.0;
    double baseline = 0.0;       ///< mean of the comparison window
    double deltaPct = 0.0;       ///< (current - baseline) / |baseline|
    std::size_t window = 0;      ///< prior entries actually compared
    Delta verdict = Delta::New;
    GateDir dir = GateDir::None; ///< gating direction of this metric
    bool gated = false;          ///< counts toward the failure verdict
};

/** One span's contribution to a wall-clock regression. */
struct SpanBlame
{
    std::string span;         ///< span name from span_self_ms
    double currentMs = 0.0;   ///< newest entry's self time
    double baselineMs = 0.0;  ///< window mean (absent entries = 0)
    double deltaMs = 0.0;     ///< currentMs - baselineMs
};

/** Blame attached to a bench whose wall_clock_s gate tripped: the
 *  top spans by self-time growth, newest vs the same comparison
 *  window the gate used.  Only entries that carried span data count
 *  toward the baseline mean, so untraced runs don't dilute it. */
struct BenchBlame
{
    std::string bench;
    std::vector<SpanBlame> topSpans; ///< delta desc, at most 3
};

struct Report
{
    std::vector<MetricReport> rows;
    std::vector<BenchBlame> blames; ///< one per blamed bench
    std::size_t regressions = 0; ///< gated regressions only

    std::string toMarkdown(double thresholdPct) const;
    std::string toJson(double thresholdPct) const;
};

/**
 * Compare the newest entry of every bench under @p historyDir with
 * the mean of up to @p window prior entries.  A |delta| below
 * @p thresholdPct is Noise.  Gated metrics (wall_clock_s lower is
 * better, throughput_chips_per_s higher is better) count regressions
 * against their direction; for other metrics the verdict is
 * informational and a change beyond the threshold reports as
 * Improvement/Regression by sign only.
 */
Report report(const std::string &historyDir, std::size_t window,
              double thresholdPct);

/** CLI entry point (argv without the program name). */
int runBenchtrack(const std::vector<std::string> &args);

} // namespace benchtrack
} // namespace eval
