#include "benchtrack.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "valid/json_value.hh"

namespace eval {
namespace benchtrack {

namespace {

namespace fs = std::filesystem;

constexpr const char *kFooterTag = "BENCH_JSON ";

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

JsonValue
entryToJson(const Entry &e)
{
    JsonValue obj = JsonValue::object();
    obj.set("bench", e.bench);
    obj.set("wall_clock_s", e.wallClockS);
    obj.set("threads", e.threads);
    obj.set("peak_rss_kb", e.peakRssKb);
    JsonValue metrics = JsonValue::object();
    for (const auto &[key, value] : e.metrics)
        metrics.set(key, value);
    obj.set("metrics", metrics);
    if (!e.spanSelfMs.empty()) {
        JsonValue spans = JsonValue::object();
        for (const auto &[name, ms] : e.spanSelfMs)
            spans.set(name, ms);
        obj.set("span_self_ms", spans);
    }
    return obj;
}

/** The per-entry value set the comparison runs over: wall clock and
 *  peak RSS are folded in beside the bench's own metrics. */
std::map<std::string, double>
comparableMetrics(const Entry &e)
{
    std::map<std::string, double> out = e.metrics;
    out["wall_clock_s"] = e.wallClockS;
    if (e.peakRssKb > 0)
        out["peak_rss_kb"] = static_cast<double>(e.peakRssKb);
    return out;
}

std::string
formatValue(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** Top spans by self-time growth, newest entry vs the mean of the
 *  prior window entries that carried span data (untraced runs don't
 *  dilute the baseline).  Spans that shrank are not blamed. */
std::vector<SpanBlame>
blameSpans(const std::vector<Entry> &history, std::size_t priorCount)
{
    const Entry &cur = history.back();

    std::map<std::string, double> baselineSum;
    std::size_t traced = 0;
    for (std::size_t i = history.size() - 1 - priorCount;
         i + 1 < history.size(); ++i) {
        if (history[i].spanSelfMs.empty())
            continue;
        ++traced;
        for (const auto &[name, ms] : history[i].spanSelfMs)
            baselineSum[name] += ms;
    }

    std::vector<SpanBlame> blames;
    std::map<std::string, double> names = cur.spanSelfMs;
    for (const auto &[name, sum] : baselineSum)
        names.emplace(name, 0.0);       // vanished spans still rank
    for (const auto &[name, unused] : names) {
        (void)unused;
        SpanBlame b;
        b.span = name;
        const auto it = cur.spanSelfMs.find(name);
        b.currentMs = it != cur.spanSelfMs.end() ? it->second : 0.0;
        const auto base = baselineSum.find(name);
        if (traced > 0 && base != baselineSum.end())
            b.baselineMs = base->second / static_cast<double>(traced);
        b.deltaMs = b.currentMs - b.baselineMs;
        if (b.deltaMs > 0.0)
            blames.push_back(std::move(b));
    }
    std::sort(blames.begin(), blames.end(),
              [](const SpanBlame &a, const SpanBlame &b) {
                  if (a.deltaMs != b.deltaMs)
                      return a.deltaMs > b.deltaMs;
                  return a.span < b.span;
              });
    if (blames.size() > 3)
        blames.resize(3);
    return blames;
}

} // namespace

GateDir
gateDir(const std::string &metric)
{
    if (metric == "wall_clock_s")
        return GateDir::LowerBetter;
    if (metric == "throughput_chips_per_s")
        return GateDir::HigherBetter;
    return GateDir::None;
}

const char *
gateDirName(GateDir d)
{
    switch (d) {
      case GateDir::None:         return "none";
      case GateDir::LowerBetter:  return "lower_better";
      case GateDir::HigherBetter: return "higher_better";
    }
    return "?";
}

const char *
deltaName(Delta d)
{
    switch (d) {
      case Delta::New:         return "new";
      case Delta::Noise:       return "noise";
      case Delta::Improvement: return "improvement";
      case Delta::Regression:  return "regression";
    }
    return "?";
}

bool
parseEntry(const std::string &line, Entry &out)
{
    std::string body = line;
    const std::size_t tag = body.find(kFooterTag);
    if (tag != std::string::npos)
        body = body.substr(tag + std::strlen(kFooterTag));
    const std::size_t brace = body.find('{');
    if (brace == std::string::npos)
        return false;
    if (tag == std::string::npos && brace != 0)
        return false;                      // prose line, not JSONL

    JsonValue doc;
    try {
        doc = JsonValue::parse(
            std::string_view(body).substr(brace));
    } catch (const JsonParseError &) {
        return false;
    }
    if (doc.type() != JsonValue::Type::Object || !doc.has("bench") ||
        !doc.has("wall_clock_s")) {
        return false;
    }

    Entry e;
    try {
        e.bench = doc.at("bench").asString();
        e.wallClockS = doc.at("wall_clock_s").asDouble();
        if (doc.has("threads"))
            e.threads = doc.at("threads").asInt();
        if (doc.has("peak_rss_kb"))
            e.peakRssKb = doc.at("peak_rss_kb").asInt();
        if (doc.has("metrics")) {
            for (const auto &[key, value] :
                 doc.at("metrics").asObject()) {
                if (value.isNumber())
                    e.metrics[key] = value.asDouble();
            }
        }
        if (doc.has("span_self_ms")) {
            for (const auto &[name, ms] :
                 doc.at("span_self_ms").asObject()) {
                if (ms.isNumber())
                    e.spanSelfMs[name] = ms.asDouble();
            }
        }
    } catch (const std::runtime_error &) {
        return false;
    }
    out = std::move(e);
    return true;
}

std::vector<Entry>
parseEntries(const std::string &text)
{
    std::vector<Entry> entries;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        Entry e;
        if (parseEntry(line, e))
            entries.push_back(std::move(e));
    }
    return entries;
}

std::size_t
ingest(const std::vector<Entry> &entries, const std::string &historyDir)
{
    std::error_code ec;
    fs::create_directories(historyDir, ec);
    std::size_t appended = 0;
    for (const Entry &e : entries) {
        const std::string path =
            (fs::path(historyDir) / (e.bench + ".jsonl")).string();
        std::ofstream out(path, std::ios::app);
        if (!out)
            continue;
        out << entryToJson(e).dump() << "\n";
        ++appended;
    }
    return appended;
}

std::vector<Entry>
loadHistory(const std::string &path)
{
    return parseEntries(readFile(path));
}

Report
report(const std::string &historyDir, std::size_t window,
       double thresholdPct)
{
    Report rep;

    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(historyDir, ec)) {
        if (de.path().extension() == ".jsonl")
            files.push_back(de.path().string());
    }
    std::sort(files.begin(), files.end());

    for (const std::string &file : files) {
        const std::vector<Entry> history = loadHistory(file);
        if (history.empty())
            continue;
        const Entry &cur = history.back();
        const std::size_t priorCount =
            std::min(window, history.size() - 1);
        bool wallClockRegressed = false;

        for (const auto &[metric, value] : comparableMetrics(cur)) {
            MetricReport row;
            row.bench = cur.bench;
            row.metric = metric;
            row.current = value;
            row.dir = gateDir(metric);
            row.gated = row.dir != GateDir::None;

            // Baseline: mean over the last `window` prior entries
            // that have this metric at all.
            double sum = 0.0;
            std::size_t n = 0;
            for (std::size_t i = history.size() - 1 - priorCount;
                 i + 1 < history.size(); ++i) {
                const auto prior = comparableMetrics(history[i]);
                const auto it = prior.find(metric);
                if (it != prior.end()) {
                    sum += it->second;
                    ++n;
                }
            }
            row.window = n;

            if (n == 0) {
                row.verdict = Delta::New;
            } else {
                row.baseline = sum / static_cast<double>(n);
                if (std::abs(row.baseline) < 1e-12) {
                    row.deltaPct = 0.0;
                    row.verdict = std::abs(row.current) < 1e-12
                                      ? Delta::Noise
                                      : Delta::New;
                } else {
                    row.deltaPct = (row.current - row.baseline) /
                                   std::abs(row.baseline) * 100.0;
                    if (std::abs(row.deltaPct) < thresholdPct) {
                        row.verdict = Delta::Noise;
                    } else if (row.gated) {
                        // A move against the metric's direction is
                        // the regression.
                        const bool worse =
                            row.dir == GateDir::LowerBetter
                                ? row.deltaPct > 0.0
                                : row.deltaPct < 0.0;
                        row.verdict = worse ? Delta::Regression
                                            : Delta::Improvement;
                    } else {
                        // Informational: direction label only, never
                        // fails the gate (higher-is-better framing).
                        row.verdict = row.deltaPct > 0.0
                                          ? Delta::Improvement
                                          : Delta::Regression;
                    }
                }
            }
            if (row.gated && row.verdict == Delta::Regression) {
                ++rep.regressions;
                if (metric == "wall_clock_s")
                    wallClockRegressed = true;
            }
            rep.rows.push_back(std::move(row));
        }

        // The wall-clock gate tripped: name the spans whose self
        // time grew the most against the same comparison window.
        if (wallClockRegressed) {
            BenchBlame blame;
            blame.bench = cur.bench;
            blame.topSpans = blameSpans(history, priorCount);
            if (!blame.topSpans.empty())
                rep.blames.push_back(std::move(blame));
        }
    }
    return rep;
}

std::string
Report::toMarkdown(double thresholdPct) const
{
    std::string out = "# Bench regression report\n\n";
    out += "Noise threshold: " + formatValue(thresholdPct) +
           "% — gated metrics: `wall_clock_s` (lower is better), "
           "`throughput_chips_per_s` (higher is better). "
           "Gated regressions: " + std::to_string(regressions) + ".\n\n";
    out += "| bench | metric | current | baseline | delta | window | "
           "verdict |\n";
    out += "|---|---|---:|---:|---:|---:|---|\n";
    for (const MetricReport &r : rows) {
        out += "| " + r.bench + " | " + r.metric + " | " +
               formatValue(r.current) + " | ";
        out += r.verdict == Delta::New ? "-" : formatValue(r.baseline);
        out += " | ";
        out += r.verdict == Delta::New
                   ? std::string("-")
                   : formatValue(r.deltaPct) + "%";
        out += " | " + std::to_string(r.window) + " | ";
        out += deltaName(r.verdict);
        if (r.gated && r.verdict == Delta::Regression)
            out += " ❌";
        out += " |\n";
    }
    for (const BenchBlame &b : blames) {
        out += "\n## Blame: " + b.bench + "\n\n";
        out += "`wall_clock_s` regressed — top spans by self-time "
               "growth vs the window baseline:\n\n";
        for (const SpanBlame &s : b.topSpans) {
            out += "- `" + s.span + "` +" + formatValue(s.deltaMs) +
                   " ms (" + formatValue(s.baselineMs) + " → " +
                   formatValue(s.currentMs) + " ms)\n";
        }
    }
    return out;
}

std::string
Report::toJson(double thresholdPct) const
{
    JsonValue doc = JsonValue::object();
    doc.set("threshold_pct", thresholdPct);
    doc.set("regressions",
            static_cast<std::int64_t>(regressions));
    JsonValue arr = JsonValue::array();
    for (const MetricReport &r : rows) {
        JsonValue row = JsonValue::object();
        row.set("bench", r.bench);
        row.set("metric", r.metric);
        row.set("current", r.current);
        row.set("baseline", r.baseline);
        row.set("delta_pct", r.deltaPct);
        row.set("window", static_cast<std::int64_t>(r.window));
        row.set("verdict", deltaName(r.verdict));
        row.set("gated", r.gated);
        row.set("direction", gateDirName(r.dir));
        arr.push(std::move(row));
    }
    doc.set("rows", std::move(arr));
    JsonValue blameArr = JsonValue::array();
    for (const BenchBlame &b : blames) {
        JsonValue obj = JsonValue::object();
        obj.set("bench", b.bench);
        JsonValue spans = JsonValue::array();
        for (const SpanBlame &s : b.topSpans) {
            JsonValue span = JsonValue::object();
            span.set("span", s.span);
            span.set("current_ms", s.currentMs);
            span.set("baseline_ms", s.baselineMs);
            span.set("delta_ms", s.deltaMs);
            spans.push(std::move(span));
        }
        obj.set("spans", std::move(spans));
        blameArr.push(std::move(obj));
    }
    doc.set("blames", std::move(blameArr));
    return doc.dump(2) + "\n";
}

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: benchtrack ingest --history DIR FILE...\n"
        "       benchtrack report --history DIR [--window N]\n"
        "                         [--threshold PCT] [--markdown FILE]\n"
        "                         [--json FILE] [--gate]\n");
    return 2;
}

bool
writeFileOrStdout(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
runBenchtrack(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const std::string cmd = args[0];

    std::string historyDir;
    std::string markdownOut;
    std::string jsonOut;
    std::vector<std::string> files;
    std::size_t window = 5;
    double thresholdPct = 10.0;
    bool gate = false;

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&](const char *flag) -> const std::string & {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "benchtrack: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return args[++i];
        };
        if (a == "--history")
            historyDir = value("--history");
        else if (a == "--window")
            window = static_cast<std::size_t>(
                std::stoul(value("--window")));
        else if (a == "--threshold")
            thresholdPct = std::stod(value("--threshold"));
        else if (a == "--markdown")
            markdownOut = value("--markdown");
        else if (a == "--json")
            jsonOut = value("--json");
        else if (a == "--gate")
            gate = true;
        else if (!a.empty() && a[0] == '-')
            return usage();
        else
            files.push_back(a);
    }
    if (historyDir.empty())
        return usage();

    if (cmd == "ingest") {
        if (files.empty())
            return usage();
        std::vector<Entry> entries;
        for (const std::string &file : files) {
            const std::string text = readFile(file);
            if (text.empty()) {
                std::fprintf(stderr,
                             "benchtrack: cannot read '%s'\n",
                             file.c_str());
                return 2;
            }
            const auto parsed = parseEntries(text);
            entries.insert(entries.end(), parsed.begin(),
                           parsed.end());
        }
        const std::size_t n = ingest(entries, historyDir);
        std::printf("benchtrack: ingested %zu entr%s into %s\n", n,
                    n == 1 ? "y" : "ies", historyDir.c_str());
        return 0;
    }

    if (cmd == "report") {
        const Report rep = report(historyDir, window, thresholdPct);
        if (!markdownOut.empty() &&
            !writeFileOrStdout(markdownOut,
                               rep.toMarkdown(thresholdPct))) {
            std::fprintf(stderr, "benchtrack: cannot write '%s'\n",
                         markdownOut.c_str());
            return 2;
        }
        if (!jsonOut.empty() &&
            !writeFileOrStdout(jsonOut, rep.toJson(thresholdPct))) {
            std::fprintf(stderr, "benchtrack: cannot write '%s'\n",
                         jsonOut.c_str());
            return 2;
        }
        if (markdownOut.empty() && jsonOut.empty())
            std::fputs(rep.toMarkdown(thresholdPct).c_str(), stdout);
        std::printf("benchtrack: %zu metric%s, %zu gated "
                    "regression%s\n",
                    rep.rows.size(), rep.rows.size() == 1 ? "" : "s",
                    rep.regressions,
                    rep.regressions == 1 ? "" : "s");
        return gate && rep.regressions > 0 ? 1 : 0;
    }

    return usage();
}

} // namespace benchtrack
} // namespace eval
