/**
 * @file
 * The layering-contract manifest: tools/lint/layers.toml.
 *
 * The manifest declares the allowed dependency DAG over the src/
 * modules plus each module's exception contract.  It is the single
 * source of truth for module boundaries — the `evald` extraction
 * (ROADMAP item 1) freezes against it.  Shape:
 *
 *     [modules.core]
 *     uses   = ["arch", "util", ...]   # explicit allowed edges
 *     throws = []                      # types this module may throw
 *
 *     [exceptions]
 *     edges = [
 *       "core/eval.hh -> cmp : umbrella header aggregates the API",
 *     ]
 *
 * Rules enforced by the layering pass (passes.cc):
 *  - every cross-module include needs an explicit `uses` edge or a
 *    per-file exception entry (lay-edge),
 *  - the declared `uses` edges must form a DAG (lay-manifest),
 *  - every declared edge and exception must be exercised by at least
 *    one include, so the manifest can never drift stale
 *    (lay-unused-edge),
 *  - every src/ module must be declared (lay-module).
 *
 * The parser covers the TOML subset the manifest needs (tables,
 * string arrays over multiple lines, comments); anything else is a
 * parse error so the manifest cannot silently half-load.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

namespace eval::lint {

struct LayerEdge
{
    std::string to;
    int line = 0; ///< declaration line in layers.toml
};

struct ModuleContract
{
    std::string name;
    int line = 0; ///< [modules.<name>] header line
    std::vector<LayerEdge> uses;
    std::vector<std::string> throws_; ///< allowed thrown type names
    bool throwsDeclared = false; ///< absent list = "may not throw"
};

struct EdgeException
{
    std::string file; ///< src-relative, e.g. "core/eval.hh"
    std::string to;   ///< target module
    std::string why;
    int line = 0;
};

struct LayersManifest
{
    bool loaded = false;
    std::string path; ///< as reported in diagnostics
    std::map<std::string, ModuleContract> modules;
    std::vector<EdgeException> exceptions;
};

/**
 * Parse manifest text.  Structural problems (unknown syntax, bad edge
 * spelling, `uses` cycles) are appended to @p errors as
 * "line N: message" strings; the caller turns them into lay-manifest
 * findings anchored at the manifest file.
 */
LayersManifest parseLayers(const std::string &text,
                           std::vector<std::string> &errors);

/**
 * Verify the declared `uses` edges form a DAG.  On a cycle, appends
 * one error naming the module chain.  (Called by parseLayers; exposed
 * for direct testing.)
 */
void checkLayerDag(const LayersManifest &manifest,
                   std::vector<std::string> &errors);

} // namespace eval::lint
