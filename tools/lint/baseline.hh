/**
 * @file
 * Finding baselines for incremental adoption.
 *
 * A baseline file records known, accepted findings so a new pass can
 * be turned on without first fixing (or inline-suppressing) every
 * historical hit: baselined findings are reported as `unchanged` in
 * SARIF and do not fail the run; only fresh findings exit 1.
 *
 * Format (one entry per line, tab-separated, '#' comments):
 *
 *     <rule>\t<file>\t<line>
 *
 * Entries match exactly.  Regenerate with `eval_lint
 * --write-baseline FILE` after deliberate changes; entries that no
 * longer match anything are reported on stderr by the CLI so the
 * baseline ratchets down, never silently up.
 */

#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lint.hh"

namespace eval::lint {

struct Baseline
{
    bool loaded = false;
    std::vector<std::string> keys; ///< parsed entry keys, file order
};

/** Key under which a finding is baselined. */
std::string baselineKey(const Diagnostic &d);

/** Parse a baseline file.  On I/O error returns unloaded and sets
 *  *error if non-null. */
Baseline loadBaseline(const std::filesystem::path &path,
                      std::string *error = nullptr);

struct BaselineSplit
{
    std::vector<Diagnostic> fresh;     ///< not in the baseline: fail
    std::vector<Diagnostic> baselined; ///< known: report, don't fail
    std::vector<std::string> stale;    ///< entries matching nothing
};

/** Partition findings against a baseline. */
BaselineSplit applyBaseline(const std::vector<Diagnostic> &diags,
                            const Baseline &baseline);

/** Serialized baseline covering @p diags (the --write-baseline body). */
std::string renderBaseline(const std::vector<Diagnostic> &diags);

} // namespace eval::lint
