/**
 * @file
 * Phase 1 of the semantic analyzer: a lightweight per-file index.
 *
 * buildFileIndex() parses one translation unit (token-level, over the
 * blanked Scan — no preprocessor, no full C++ grammar) into the facts
 * the project-wide passes need:
 *
 *  - include edges (quoted and angled, with line numbers),
 *  - namespace / class / struct / enum / function declarations,
 *  - throw and catch sites with the thrown/caught type spelling,
 *  - std::memory_order uses (the atomics audit keys on `relaxed`),
 *  - parallelFor/parallelMap call regions with the lambda's capture
 *    list, parameter names, and blanked body text.
 *
 * Phase 2 (passes.cc) runs project-wide over the vector of FileIndex
 * records: layering contracts against tools/lint/layers.toml, include
 * cycles, per-module exception contracts, the relaxed-atomics audit,
 * and the determinism data-flow check on parallel regions.
 *
 * The index is deliberately approximate where C++ is undecidable at
 * the token level (macro-generated code, template metaprogramming);
 * every consumer treats absence of evidence as "no finding", so the
 * approximation can only under-report, never spray false positives
 * from misparsed constructs.
 */

#pragma once

#include <string>
#include <vector>

#include "source_scan.hh"
#include "suppress.hh"

namespace eval::lint {

struct IncludeSite
{
    std::string path; ///< as written between the quotes/brackets
    int line = 1;
    bool angled = false; ///< #include <...> (system/library header)
};

struct DeclSite
{
    enum class Kind { Namespace, Class, Struct, Enum, Function };
    Kind kind = Kind::Namespace;
    std::string name;
    int line = 1;
};

struct ThrowSite
{
    std::string type; ///< full spelling, e.g. "std::runtime_error";
                      ///< empty for `throw;` / `throw expr;`
    int line = 1;
    bool rethrow = false; ///< bare `throw;`
};

struct CatchSite
{
    std::string type; ///< "..." for catch-all
    int line = 1;
};

struct AtomicSite
{
    std::string order; ///< relaxed, acquire, release, acq_rel, seq_cst,
                       ///< consume
    int line = 1;
};

struct ParallelRegion
{
    std::string entry; ///< parallelFor | parallelMap
    int line = 1;      ///< line of the entry call
    std::string captures;             ///< lambda capture list text
    std::vector<std::string> params;  ///< lambda parameter names
    std::string body;    ///< blanked lambda body (between its braces)
    std::size_t bodyOffset = 0; ///< body start offset in the file
};

struct FileIndex
{
    std::string relPath;
    std::string module; ///< first dir under src/ ("" if not src/)
    bool header = false;
    FileMarkers markers;
    std::vector<std::size_t> lineStart; ///< for offset -> line mapping

    /** 1-based line of a file offset (e.g. region bodyOffset + k). */
    int lineAt(std::size_t offset) const;

    std::vector<IncludeSite> includes;
    std::vector<DeclSite> decls;
    std::vector<ThrowSite> throwSites;
    std::vector<CatchSite> catchSites;
    std::vector<AtomicSite> atomics;
    std::vector<ParallelRegion> regions;
};

/** Module of a src-relative path ("src/util/fft.cc" -> "util";
 *  "" when the path is not under src/ or sits directly in src/). */
std::string moduleOf(const std::string &relPath);

/** Build the index for one file.  @p scan must be scanSource(content)
 *  for the same content; markers come from parseSuppressions so the
 *  comment stream is parsed once. */
FileIndex buildFileIndex(const std::string &relPath,
                         const std::string &content, const Scan &scan,
                         const FileMarkers &markers);

/** Convenience overload for tests: scans and parses markers itself
 *  (marker diagnostics are discarded). */
FileIndex buildFileIndex(const std::string &relPath,
                         const std::string &content);

} // namespace eval::lint
