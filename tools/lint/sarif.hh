/**
 * @file
 * SARIF 2.1.0 export.
 *
 * toSarif() renders the run's findings as a minimal, schema-valid
 * SARIF document: one run, the eval-lint driver with its full rule
 * catalog (so viewers can show help text for rules with no hits),
 * and one result per finding with a physical location relative to
 * SRCROOT.  When a baseline was applied, results carry
 * `baselineState` ("new" for fresh findings, "unchanged" for
 * baselined ones) so code-scanning UIs can hide the accepted debt.
 */

#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace eval::lint {

/** Render @p diags as a SARIF 2.1.0 document.
 *
 *  @p baselinedKeys  baselineKey() strings of findings accepted by a
 *                    baseline file; when null no baselineState is
 *                    emitted at all (no baseline was in play).
 *  @p rootUri        absolute file:// URI of the lint root, used as
 *                    the SRCROOT originalUriBaseId ("" to omit). */
std::string toSarif(const std::vector<Diagnostic> &diags,
                    const std::set<std::string> *baselinedKeys,
                    const std::string &rootUri);

} // namespace eval::lint
