/**
 * @file
 * eval-lint command-line driver.
 *
 * Usage:
 *   eval_lint [--root DIR] [--exclude SUBSTR]... [--jobs N]
 *             [--layers FILE] [--baseline FILE | --write-baseline FILE]
 *             [--json FILE] [--sarif FILE] [--list-rules] [PATH...]
 *
 * PATHs are relative to --root (default: the current directory) and
 * default to src bench tests examples tools.  With --baseline, only
 * findings absent from the baseline file fail the run (exit 1);
 * baselined findings are still printed (marked) and exported to SARIF
 * as baselineState "unchanged".  Exit codes: 0 clean, 1 fresh
 * findings, 2 usage or I/O error.
 */

#include "lint.hh"

#include "baseline.hh"
#include "sarif.hh"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

namespace {

int
usage(std::ostream &out, int code)
{
    out << "usage: eval_lint [--root DIR] [--exclude SUBSTR]...\n"
           "                 [--jobs N] [--layers FILE]\n"
           "                 [--baseline FILE | --write-baseline FILE]\n"
           "                 [--json FILE] [--sarif FILE]\n"
           "                 [--list-rules] [PATH...]\n"
           "\n"
           "Lints .cc/.cpp/.hh/.h files under each PATH (relative to\n"
           "--root; default: src bench tests examples tools) against\n"
           "the repo's determinism/numerics/hygiene rules and the\n"
           "project-wide semantic passes (layering contracts from\n"
           "tools/lint/layers.toml, include cycles, exception\n"
           "contracts, atomics audit, determinism data-flow).\n"
           "\n"
           "  --jobs N            parallel scan width (0 = auto)\n"
           "  --layers FILE       layering manifest (default:\n"
           "                      <root>/tools/lint/layers.toml, then\n"
           "                      <root>/layers.toml)\n"
           "  --baseline FILE     accepted findings; only fresh ones\n"
           "                      fail the run\n"
           "  --write-baseline F  write the current findings as the\n"
           "                      new baseline and exit 0\n"
           "  --json FILE         findings as JSON (CI artifact)\n"
           "  --sarif FILE        findings as SARIF 2.1.0\n"
           "\n"
           "Exit: 0 clean, 1 fresh findings, 2 usage or I/O error.\n";
    return code;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << content;
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    eval::lint::Options opts;
    opts.root = ".";
    std::string jsonPath;
    std::string sarifPath;
    std::string baselinePath;
    std::string writeBaselinePath;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "eval-lint: " << flag
                          << " requires an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--list-rules") {
            for (const auto &r : eval::lint::ruleCatalog())
                std::cout << r.id << "\n    " << r.summary << "\n";
            return 0;
        } else if (arg == "--root") {
            const char *v = value("--root");
            if (!v)
                return 2;
            opts.root = v;
        } else if (arg == "--exclude") {
            const char *v = value("--exclude");
            if (!v)
                return 2;
            opts.excludes.push_back(v);
        } else if (arg == "--jobs") {
            const char *v = value("--jobs");
            if (!v)
                return 2;
            try {
                opts.jobs = static_cast<unsigned>(std::stoul(v));
            } catch (...) {
                std::cerr << "eval-lint: --jobs wants a number, got '"
                          << v << "'\n";
                return 2;
            }
        } else if (arg == "--layers") {
            const char *v = value("--layers");
            if (!v)
                return 2;
            opts.layersFile = v;
        } else if (arg == "--baseline") {
            const char *v = value("--baseline");
            if (!v)
                return 2;
            baselinePath = v;
        } else if (arg == "--write-baseline") {
            const char *v = value("--write-baseline");
            if (!v)
                return 2;
            writeBaselinePath = v;
        } else if (arg == "--json") {
            const char *v = value("--json");
            if (!v)
                return 2;
            jsonPath = v;
        } else if (arg == "--sarif") {
            const char *v = value("--sarif");
            if (!v)
                return 2;
            sarifPath = v;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "eval-lint: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            opts.paths.push_back(arg);
        }
    }
    if (!baselinePath.empty() && !writeBaselinePath.empty()) {
        std::cerr << "eval-lint: --baseline and --write-baseline are "
                     "mutually exclusive\n";
        return 2;
    }

    std::string error;
    const auto diags = eval::lint::runLint(opts, &error);
    if (!error.empty()) {
        std::cerr << "eval-lint: " << error << '\n';
        return 2;
    }

    if (!writeBaselinePath.empty()) {
        if (!writeFile(writeBaselinePath,
                       eval::lint::renderBaseline(diags))) {
            std::cerr << "eval-lint: cannot write " << writeBaselinePath
                      << '\n';
            return 2;
        }
        std::cout << "eval-lint: baselined " << diags.size()
                  << " finding" << (diags.size() == 1 ? "" : "s")
                  << " to " << writeBaselinePath << '\n';
        return 0;
    }

    eval::lint::BaselineSplit split;
    const std::set<std::string> *baselinedKeys = nullptr;
    std::set<std::string> baselinedKeySet;
    if (!baselinePath.empty()) {
        std::string blError;
        const auto baseline =
            eval::lint::loadBaseline(baselinePath, &blError);
        if (!baseline.loaded) {
            std::cerr << "eval-lint: " << blError << '\n';
            return 2;
        }
        split = eval::lint::applyBaseline(diags, baseline);
        for (const auto &d : split.baselined)
            baselinedKeySet.insert(eval::lint::baselineKey(d));
        baselinedKeys = &baselinedKeySet;
    } else {
        split.fresh = diags;
    }

    for (const auto &d : split.fresh)
        std::cout << eval::lint::formatDiagnostic(d) << '\n';
    for (const auto &d : split.baselined)
        std::cout << eval::lint::formatDiagnostic(d) << " (baselined)\n";
    for (const auto &key : split.stale)
        std::cerr << "eval-lint: stale baseline entry matches no "
                     "finding: " << key << '\n';

    if (!jsonPath.empty() &&
        !writeFile(jsonPath, eval::lint::toJson(diags))) {
        std::cerr << "eval-lint: cannot write " << jsonPath << '\n';
        return 2;
    }
    if (!sarifPath.empty()) {
        std::error_code ec;
        const auto canon =
            std::filesystem::weakly_canonical(opts.root, ec);
        const std::string rootUri =
            ec ? "" : "file://" + canon.generic_string() + "/";
        if (!writeFile(sarifPath, eval::lint::toSarif(diags, baselinedKeys,
                                                      rootUri))) {
            std::cerr << "eval-lint: cannot write " << sarifPath << '\n';
            return 2;
        }
    }

    if (diags.empty()) {
        std::cout << "eval-lint: clean\n";
    } else {
        std::cout << "eval-lint: " << diags.size() << " finding"
                  << (diags.size() == 1 ? "" : "s");
        if (!baselinePath.empty())
            std::cout << " (" << split.fresh.size() << " fresh, "
                      << split.baselined.size() << " baselined)";
        std::cout << '\n';
    }
    return eval::lint::exitCodeFor(split.fresh);
}
