/**
 * @file
 * eval-lint command-line driver.
 *
 * Usage:
 *   eval_lint [--root DIR] [--exclude SUBSTR]... [--json FILE]
 *             [--list-rules] [PATH...]
 *
 * PATHs are relative to --root (default: the current directory) and
 * default to src bench tests examples tools.  Exit codes: 0 clean,
 * 1 findings, 2 usage or I/O error.
 */

#include "lint.hh"

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

int
usage(std::ostream &out, int code)
{
    out << "usage: eval_lint [--root DIR] [--exclude SUBSTR]...\n"
           "                 [--json FILE] [--list-rules] [PATH...]\n"
           "\n"
           "Lints .cc/.cpp/.hh/.h files under each PATH (relative to\n"
           "--root; default: src bench tests examples tools) against\n"
           "the repo's determinism/numerics/hygiene rules.\n"
           "Exit: 0 clean, 1 findings, 2 usage or I/O error.\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    eval::lint::Options opts;
    opts.root = ".";
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "eval-lint: " << flag
                          << " requires an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--list-rules") {
            for (const auto &r : eval::lint::ruleCatalog())
                std::cout << r.id << "\n    " << r.summary << "\n";
            return 0;
        } else if (arg == "--root") {
            const char *v = value("--root");
            if (!v)
                return 2;
            opts.root = v;
        } else if (arg == "--exclude") {
            const char *v = value("--exclude");
            if (!v)
                return 2;
            opts.excludes.push_back(v);
        } else if (arg == "--json") {
            const char *v = value("--json");
            if (!v)
                return 2;
            jsonPath = v;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "eval-lint: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            opts.paths.push_back(arg);
        }
    }

    std::string error;
    const auto diags = eval::lint::runLint(opts, &error);
    if (!error.empty()) {
        std::cerr << "eval-lint: " << error << '\n';
        return 2;
    }

    for (const auto &d : diags)
        std::cout << eval::lint::formatDiagnostic(d) << '\n';

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "eval-lint: cannot write " << jsonPath << '\n';
            return 2;
        }
        out << eval::lint::toJson(diags);
    }

    if (diags.empty()) {
        std::cout << "eval-lint: clean\n";
    } else {
        std::cout << "eval-lint: " << diags.size() << " finding"
                  << (diags.size() == 1 ? "" : "s") << '\n';
    }
    return eval::lint::exitCodeFor(diags);
}
