/**
 * @file
 * Phase 2 of the semantic analyzer: project-wide passes over the
 * FileIndex records built in phase 1.
 *
 * Passes and their rule ids:
 *
 *  - layering contract (lay-edge, lay-module, lay-unused-edge,
 *    lay-manifest): every cross-module include under src/ must match
 *    an explicit `uses` edge or a per-file exception in
 *    tools/lint/layers.toml; declared edges must form a DAG and must
 *    all be exercised.  Inline suppressions are rejected for lay-*
 *    rules — the manifest is the only door.
 *  - include cycles (lay-cycle): the file-level include graph over
 *    the indexed tree must be acyclic.
 *  - exception contracts (exc-contract): a `throw <Type>` site inside
 *    module M must name a type in M's `throws` list.  Intra-module
 *    transitive throws are covered by construction (every site in the
 *    module is checked, wherever it sits in the call graph); bare
 *    rethrows (`throw;`) pass through.
 *  - atomics audit (atomics-relaxed): every memory_order_relaxed in
 *    src/ needs an audited inline allowance, unless the file carries
 *    the `eval-lint: counters-only <why>` marker (monotone counters
 *    off the model path, e.g. src/obs/progress.hh).
 *  - determinism data-flow (det-par-capture): a lambda passed to
 *    parallelFor/parallelMap that captures by reference and then
 *    grows/mutates the captured object order-dependently
 *    (push_back/insert/erase/...) is flagged; slot-indexed writes
 *    (out[i] = ...) and merge-type folds stay silent.
 */

#pragma once

#include <string>
#include <vector>

#include "index.hh"
#include "layers.hh"

namespace eval::lint {

struct Diagnostic;

struct ProjectIndex
{
    std::vector<FileIndex> files;
};

struct PassOptions
{
    /** Emit manifest-anchored findings (lay-unused-edge, lay-module
     *  for missing declarations) — true only for full-tree runs, so a
     *  changed-files-only lint never reports an edge as unused just
     *  because its users were out of scope. */
    bool fullTree = true;

    /** Manifest path relative to the root, for anchoring manifest
     *  findings ("" when no manifest was found). */
    std::string manifestRel;
};

/**
 * Run every project pass.  @p manifest may be unloaded
 * (manifest.loaded == false) when the tree has no layers.toml; the
 * layering and exception-contract passes are skipped then, the
 * atomics and determinism passes still run.  @p manifestErrors are
 * the parse errors from parseLayers, turned into lay-manifest
 * findings here.  Findings are appended for every file; the caller
 * scopes and suppresses them.
 */
std::vector<Diagnostic> runProjectPasses(
    const ProjectIndex &index, const LayersManifest &manifest,
    const std::vector<std::string> &manifestErrors,
    const PassOptions &opts);

} // namespace eval::lint
