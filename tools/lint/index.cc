#include "index.hh"

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace eval::lint {

int
FileIndex::lineAt(std::size_t offset) const
{
    auto it = std::upper_bound(lineStart.begin(), lineStart.end(), offset);
    return static_cast<int>(it - lineStart.begin());
}

std::string
moduleOf(const std::string &relPath)
{
    if (!startsWith(relPath, "src/"))
        return "";
    const std::size_t begin = 4;
    const std::size_t slash = relPath.find('/', begin);
    if (slash == std::string::npos)
        return ""; // file directly under src/ belongs to no module
    return relPath.substr(begin, slash - begin);
}

namespace {

void
indexIncludes(const std::string &content, FileIndex &out)
{
    static const std::regex incRe(
        R"(^[ \t]*#[ \t]*include[ \t]*(["<])([^">]+)[">])");
    std::istringstream lines(content);
    std::string line;
    int lineNo = 0;
    while (std::getline(lines, line)) {
        ++lineNo;
        std::smatch m;
        if (!std::regex_search(line, m, incRe))
            continue;
        IncludeSite site;
        site.path = m[2].str();
        site.line = lineNo;
        site.angled = m[1].str() == "<";
        out.includes.push_back(std::move(site));
    }
}

bool
keyword(const std::string &word)
{
    static const char *kw[] = {
        "if",     "for",    "while",  "switch", "return", "sizeof",
        "catch",  "throw",  "new",    "delete", "static_assert",
        "alignof", "decltype", "noexcept", "operator", "defined",
    };
    for (const char *k : kw)
        if (word == k)
            return true;
    return false;
}

void
indexDecls(const Scan &scan, FileIndex &out)
{
    const std::string &code = scan.code;

    static const std::regex nsRe(R"(namespace\s+([A-Za-z_]\w*(::\w+)*))");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), nsRe);
         it != std::sregex_iterator(); ++it)
        out.decls.push_back({DeclSite::Kind::Namespace, (*it)[1].str(),
                             lineOf(scan, it->position())});

    static const std::regex typeRe(
        R"((class|struct|enum)\s+(class\s+|struct\s+)?([A-Za-z_]\w*))");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), typeRe);
         it != std::sregex_iterator(); ++it) {
        const std::string kindWord = (*it)[1].str();
        const DeclSite::Kind kind = kindWord == "class"
                                        ? DeclSite::Kind::Class
                                        : kindWord == "struct"
                                              ? DeclSite::Kind::Struct
                                              : DeclSite::Kind::Enum;
        out.decls.push_back(
            {kind, (*it)[3].str(), lineOf(scan, it->position())});
    }

    // Function definitions in the repo's layout: the name starts a
    // line (return type on the previous line) and is immediately
    // followed by its parameter list.  Heuristic on purpose — the
    // passes only need a best-effort symbol map, and a missed
    // declaration can only under-report.
    static const std::regex fnRe(R"((^|\n)([A-Za-z_~][\w:]*)\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), fnRe);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[2].str();
        if (keyword(name))
            continue;
        const std::size_t pos =
            static_cast<std::size_t>(it->position(2));
        out.decls.push_back(
            {DeclSite::Kind::Function, name, lineOf(scan, pos)});
    }
}

void
indexThrows(const Scan &scan, FileIndex &out)
{
    const std::string &code = scan.code;
    for (std::size_t pos : findTokens(code, "throw", false)) {
        std::size_t p = pos + 5;
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p])))
            ++p;
        ThrowSite site;
        site.line = lineOf(scan, pos);
        if (p < code.size() && code[p] == ';') {
            site.rethrow = true;
            out.throwSites.push_back(std::move(site));
            continue;
        }
        std::size_t end = p;
        while (end < code.size() &&
               (identChar(code[end]) || code[end] == ':'))
            ++end;
        site.type = code.substr(p, end - p);
        out.throwSites.push_back(std::move(site));
    }
}

void
indexCatches(const Scan &scan, FileIndex &out)
{
    const std::string &code = scan.code;
    for (std::size_t pos : findTokens(code, "catch", true)) {
        const std::size_t open = code.find('(', pos);
        const std::size_t close = matchParen(code, open);
        if (close == open)
            continue;
        const std::string inside =
            trimmed(code.substr(open + 1, close - open - 1));
        CatchSite site;
        site.line = lineOf(scan, pos);
        if (inside.find("...") != std::string::npos) {
            site.type = "...";
        } else {
            // "const SnapshotError &e" -> "SnapshotError": drop
            // cv-qualifiers and take the type spelling.
            std::istringstream words(inside);
            std::string w;
            while (words >> w) {
                while (!w.empty() && (w.front() == '&' || w.front() == '*'))
                    w.erase(w.begin());
                while (!w.empty() && (w.back() == '&' || w.back() == '*'))
                    w.pop_back();
                if (w.empty() || w == "const" || w == "volatile")
                    continue;
                site.type = w;
                break;
            }
        }
        out.catchSites.push_back(std::move(site));
    }
}

void
indexAtomics(const Scan &scan, FileIndex &out)
{
    static const std::regex orderRe(
        R"(memory_order(::|_)(relaxed|consume|acquire|release|acq_rel|seq_cst))");
    const std::string &code = scan.code;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), orderRe);
         it != std::sregex_iterator(); ++it)
        out.atomics.push_back(
            {(*it)[2].str(), lineOf(scan, it->position())});
}

/** Parse the lambda starting at the '[' at @p lb (if it is one) into
 *  @p region; returns false when the bracket is a subscript, not a
 *  lambda introducer. */
bool
parseLambda(const Scan &scan, std::size_t lb, ParallelRegion &region)
{
    const std::string &code = scan.code;
    // A lambda introducer's ']' is followed (modulo whitespace) by
    // '(' (parameter list), '{' (no parameters), or a specifier like
    // `mutable`.  A subscript's ']' is not.
    const std::size_t rb = matchBracket(code, lb, '[', ']');
    if (rb == lb)
        return false;
    std::size_t p = rb + 1;
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p])))
        ++p;
    if (p >= code.size() || (code[p] != '(' && code[p] != '{'))
        return false;

    region.captures = trimmed(code.substr(lb + 1, rb - lb - 1));

    std::size_t bodyOpen;
    if (code[p] == '(') {
        const std::size_t closeParams = matchParen(code, p);
        if (closeParams == p)
            return false;
        // Parameter names: the last identifier of each comma-separated
        // declarator (before any default value).
        const std::string paramText =
            code.substr(p + 1, closeParams - p - 1);
        std::string current;
        int depth = 0;
        auto flush = [&]() {
            const std::string decl = current.substr(
                0, std::min(current.find('='), current.size()));
            std::string name;
            std::string word;
            for (char c : decl + " ") {
                if (identChar(c)) {
                    word.push_back(c);
                } else {
                    if (!word.empty() && !std::isdigit(
                                             static_cast<unsigned char>(
                                                 word[0])))
                        name = word;
                    word.clear();
                }
            }
            if (!name.empty())
                region.params.push_back(name);
            current.clear();
        };
        for (char c : paramText) {
            if (c == '<' || c == '(' || c == '[')
                ++depth;
            else if (c == '>' || c == ')' || c == ']')
                --depth;
            if (c == ',' && depth == 0)
                flush();
            else
                current.push_back(c);
        }
        if (!trimmed(current).empty())
            flush();
        bodyOpen = code.find('{', closeParams);
    } else {
        bodyOpen = p;
    }
    if (bodyOpen == std::string::npos)
        return false;
    const std::size_t bodyClose = matchBracket(code, bodyOpen, '{', '}');
    if (bodyClose == bodyOpen)
        return false;
    region.body = code.substr(bodyOpen + 1, bodyClose - bodyOpen - 1);
    region.bodyOffset = bodyOpen + 1;
    return true;
}

void
indexParallelRegions(const Scan &scan, FileIndex &out)
{
    const std::string &code = scan.code;
    static const char *entries[] = {"parallelFor", "parallelMap"};
    for (const char *entry : entries) {
        for (std::size_t pos : findTokens(code, entry, true)) {
            const std::size_t open = code.find('(', pos);
            const std::size_t close = matchParen(code, open);
            if (close == open)
                continue; // unbalanced (partial file)
            for (std::size_t lb = code.find('[', open);
                 lb != std::string::npos && lb < close;
                 lb = code.find('[', lb + 1)) {
                ParallelRegion region;
                region.entry = entry;
                region.line = lineOf(scan, pos);
                if (parseLambda(scan, lb, region)) {
                    out.regions.push_back(std::move(region));
                    break; // one lambda per fan-out call is the idiom
                }
            }
        }
    }
}

} // namespace

FileIndex
buildFileIndex(const std::string &relPath, const std::string &content,
               const Scan &scan, const FileMarkers &markers)
{
    FileIndex out;
    out.relPath = relPath;
    out.module = moduleOf(relPath);
    const std::size_t dot = relPath.find_last_of('.');
    const std::string ext =
        dot == std::string::npos ? "" : relPath.substr(dot);
    out.header = ext == ".hh" || ext == ".h" || ext == ".hpp";
    out.markers = markers;
    out.lineStart = scan.lineStart;

    indexIncludes(content, out);
    indexDecls(scan, out);
    indexThrows(scan, out);
    indexCatches(scan, out);
    indexAtomics(scan, out);
    indexParallelRegions(scan, out);
    return out;
}

FileIndex
buildFileIndex(const std::string &relPath, const std::string &content)
{
    const Scan scan = scanSource(content);
    std::vector<Diagnostic> discard;
    FileMarkers markers;
    parseSuppressions(scan, relPath, discard, &markers);
    return buildFileIndex(relPath, content, scan, markers);
}

} // namespace eval::lint
