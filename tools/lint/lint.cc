#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

#include "exec/thread_pool.hh"

#include "baseline.hh"
#include "index.hh"
#include "layers.hh"
#include "passes.hh"
#include "source_scan.hh"
#include "suppress.hh"

namespace eval::lint {

namespace {

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

struct PathScope
{
    bool header = false;      ///< .hh/.h/.hpp
    bool inSrc = false;       ///< under src/
    bool timingExempt = false;  ///< entropy abstraction, stats, logging
    bool iostreamExempt = false; ///< the logging sink itself
};

PathScope
classify(const std::string &relPath)
{
    PathScope ps;
    const auto dot = relPath.find_last_of('.');
    const std::string ext =
        dot == std::string::npos ? "" : relPath.substr(dot);
    ps.header = ext == ".hh" || ext == ".h" || ext == ".hpp";
    ps.inSrc = startsWith(relPath, "src/");
    ps.timingExempt = startsWith(relPath, "src/util/random") ||
                      startsWith(relPath, "src/util/logging") ||
                      startsWith(relPath, "src/stats/") ||
                      startsWith(relPath, "src/trace/") ||
                      startsWith(relPath, "src/obs/");
    ps.iostreamExempt = startsWith(relPath, "src/util/logging");
    return ps;
}

// ---------------------------------------------------------------------------
// Token-level rules (phase 1, per file)
// ---------------------------------------------------------------------------

struct Ctx
{
    const std::string &relPath;
    const PathScope &scope;
    const Scan &scan;
    const FileMarkers &markers;
    std::vector<Diagnostic> &diags;

    void
    emit(std::size_t offset, const char *rule, std::string message) const
    {
        diags.push_back({relPath, lineOf(scan, offset), rule,
                         std::move(message)});
    }
};

void
ruleDetEntropy(const Ctx &ctx)
{
    if (ctx.scope.timingExempt)
        return;
    struct Tok { const char *name; bool call; };
    static const Tok toks[] = {
        {"rand", true},          {"srand", true},
        {"random_device", false}, {"time", true},
        {"clock", true},         {"gettimeofday", true},
        {"clock_gettime", true}, {"timespec_get", true},
    };
    for (const auto &t : toks)
        for (std::size_t pos : findTokens(ctx.scan.code, t.name, t.call))
            ctx.emit(pos, "det-entropy",
                     std::string("nondeterministic entropy/time source '") +
                         t.name + "'; draw from eval::Rng (src/util/random) "
                         "so every run reproduces from its seed");
}

void
ruleDetWallclock(const Ctx &ctx)
{
    if (!ctx.scope.inSrc || ctx.scope.timingExempt)
        return;
    static const char *toks[] = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "utc_clock", "file_clock",
    };
    for (const char *t : toks)
        for (std::size_t pos : findTokens(ctx.scan.code, t, false))
            ctx.emit(pos, "det-wallclock",
                     std::string("wall-clock type '") + t +
                         "' on a model path; timing belongs to the "
                         "stats/profiling layer (src/stats) or logging "
                         "timestamps");
}

void
ruleDetUnordered(const Ctx &ctx)
{
    if (!ctx.scope.inSrc)
        return;
    static const char *toks[] = {
        "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset",
    };
    for (const char *t : toks) {
        for (std::size_t pos : findTokens(ctx.scan.code, t, false)) {
            // Skip the #include line; the declaration is the
            // actionable site and one finding per site is enough.
            std::size_t ls = ctx.scan.lineStart[lineOf(ctx.scan, pos) - 1];
            while (ls < pos && std::isspace(
                                   static_cast<unsigned char>(
                                       ctx.scan.code[ls])))
                ++ls;
            if (ctx.scan.code[ls] == '#')
                continue;
            ctx.emit(pos, "det-unordered",
                     std::string("'std::") + t + "' in model code: "
                         "iteration order is unspecified and can leak "
                         "into float accumulation or output ordering; "
                         "use an ordered container or suppress with a "
                         "justification");
        }
    }
}

void
ruleDetSharedRng(const Ctx &ctx)
{
    const std::string &code = ctx.scan.code;
    static const char *entries[] = {"parallelFor", "parallelMap"};
    static const char *draws[] = {"uniform",   "uniformInt", "gaussian",
                                  "bernoulli", "fork",       "next"};
    for (const char *entry : entries) {
        for (std::size_t pos : findTokens(code, entry, true)) {
            const std::size_t open = code.find('(', pos);
            const std::size_t close = matchParen(code, open);
            if (close == open)
                continue; // unbalanced (partial file); nothing to scan
            const std::string body = code.substr(open, close - open);
            if (!findTokens(body, "split", false).empty())
                continue; // split-derived streams inside the region
            for (const char *d : draws) {
                for (std::size_t rel : findTokens(body, d, true)) {
                    // Only member calls: `.draw(` or `->draw(`.
                    const std::size_t abs = open + rel;
                    const char prev = abs > 0 ? code[abs - 1] : '\0';
                    const bool member =
                        prev == '.' ||
                        (prev == '>' && abs > 1 && code[abs - 2] == '-');
                    if (!member)
                        continue;
                    ctx.emit(abs, "det-shared-rng",
                             std::string("Rng::") + d + " drawn inside a " +
                                 entry + " body with no Rng::split in the "
                                 "region; derive a per-task stream with "
                                 "split(index) so results are independent "
                                 "of the schedule");
                }
            }
        }
    }
}

void
ruleNumFloatEq(const Ctx &ctx)
{
    // A floating literal (1.0, .5, 2e-3, 1.5e8f) adjacent to == or !=.
    static const std::regex re(
        R"((==|!=)\s*[+-]?((\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fFlL]?)"
        R"(|((\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fFlL]?\s*(==|!=))");
    const std::string &code = ctx.scan.code;
    std::set<int> seen;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
        const int line = lineOf(ctx.scan, it->position());
        if (!seen.insert(line).second)
            continue;
        ctx.emit(it->position(), "num-float-eq",
                 "exact floating-point equality comparison; compare "
                 "against a tolerance or restructure to integer state");
    }
}

void
ruleNumFloatNarrow(const Ctx &ctx)
{
    if (!ctx.scope.inSrc)
        return;
    for (std::size_t pos : findTokens(ctx.scan.code, "float", false))
        ctx.emit(pos, "num-float-narrow",
                 "'float' on a model path narrows double precision; "
                 "the model is double-throughout");
}

void
ruleHygPragmaOnce(const Ctx &ctx)
{
    if (!ctx.scope.header)
        return;
    static const std::regex re(R"(^[ \t]*#[ \t]*pragma[ \t]+once\b)");
    std::istringstream lines(ctx.scan.code);
    std::string line;
    while (std::getline(lines, line))
        if (std::regex_search(line, re))
            return;
    ctx.diags.push_back({ctx.relPath, 1, "hyg-pragma-once",
                         "header is missing '#pragma once'"});
}

void
ruleHygUsingNamespace(const Ctx &ctx)
{
    if (!ctx.scope.header)
        return;
    for (std::size_t pos : findTokens(ctx.scan.code, "using", false)) {
        std::size_t p = pos + 5;
        while (p < ctx.scan.code.size() &&
               std::isspace(static_cast<unsigned char>(ctx.scan.code[p])))
            ++p;
        if (ctx.scan.code.compare(p, 9, "namespace") == 0 &&
            (p + 9 >= ctx.scan.code.size() ||
             !identChar(ctx.scan.code[p + 9])))
            ctx.emit(pos, "hyg-using-namespace",
                     "'using namespace' at header scope pollutes every "
                     "includer");
    }
}

void
ruleHygIostream(const Ctx &ctx)
{
    if (!ctx.scope.inSrc || ctx.scope.iostreamExempt)
        return;
    static const char *qualified[] = {"cout", "cerr", "clog"};
    for (const char *t : qualified) {
        for (std::size_t pos : findTokens(ctx.scan.code, t, false)) {
            // Require std:: (or ::) qualification so local identifiers
            // named e.g. `cout` in unrelated code don't trip it.
            if (pos < 2 || ctx.scan.code.compare(pos - 2, 2, "::") != 0)
                continue;
            ctx.emit(pos, "hyg-iostream",
                     std::string("'std::") + t + "' in library code; "
                         "use the logging layer (util/logging.hh) or "
                         "take an std::ostream&");
        }
    }
    static const char *printers[] = {"printf", "fprintf", "puts", "fputs"};
    for (const char *t : printers)
        for (std::size_t pos : findTokens(ctx.scan.code, t, true))
            ctx.emit(pos, "hyg-iostream",
                     std::string("'") + t + "' in library code; use the "
                         "logging layer (util/logging.hh)");
}

void
ruleObsSpanLeak(const Ctx &ctx)
{
    // ScopedSpan IS its scope: a heap span, a span pointer/reference,
    // or a raw begin/end handle call produces overlapping events the
    // Perfetto exporter cannot nest.  src/trace owns the raw API.
    if (startsWith(ctx.relPath, "src/trace/"))
        return;
    const std::string &code = ctx.scan.code;
    for (std::size_t pos : findTokens(code, "ScopedSpan", false)) {
        std::size_t before = pos;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(code[before - 1])))
            --before;
        const bool heap =
            before >= 3 && code.compare(before - 3, 3, "new") == 0 &&
            (before == 3 || !identChar(code[before - 4]));
        if (heap) {
            ctx.emit(pos, "obs-span-leak",
                     "heap-allocated ScopedSpan outlives its lexical "
                     "scope; declare it as a stack local so the span "
                     "closes where it opened");
            continue;
        }
        std::size_t after = pos + 10; // past "ScopedSpan"
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after])))
            ++after;
        if (after < code.size() &&
            (code[after] == '*' || code[after] == '&')) {
            ctx.emit(pos, "obs-span-leak",
                     "ScopedSpan pointer/reference lets a span handle "
                     "escape its scope; pass data, not spans, and open "
                     "a new span in the callee");
        }
    }
    static const char *rawApi[] = {"beginSpanImpl", "endSpanImpl",
                                   "pushOpenSpan", "popOpenSpan"};
    for (const char *t : rawApi)
        for (std::size_t pos : findTokens(code, t, true))
            ctx.emit(pos, "obs-span-leak",
                     std::string("raw span handle API '") + t +
                         "' outside src/trace; use the RAII ScopedSpan "
                         "so every span closes in the scope that "
                         "opened it");
}

void
ruleObsProgressUnits(const Ctx &ctx)
{
    // Every parallel fan-out in bench/ is user-visible work: it must
    // tick a ProgressTracker so the status file (and eval_top) can
    // show completion, throughput, and ETA for the run.  A fan-out
    // whose progress is reported elsewhere carries an audited
    // suppression.
    if (!startsWith(ctx.relPath, "bench/"))
        return;
    const std::string &code = ctx.scan.code;
    static const char *entries[] = {"parallelFor", "parallelMap"};
    for (const char *entry : entries) {
        for (std::size_t pos : findTokens(code, entry, true)) {
            const std::size_t open = code.find('(', pos);
            const std::size_t close = matchParen(code, open);
            if (close == open)
                continue; // unbalanced (partial file); nothing to scan
            const std::string body = code.substr(open, close - open);
            // A fan-out call site passes a lambda; a region without
            // one is the pool's own declaration/definition.
            if (body.find('[') == std::string::npos)
                continue;
            if (!findTokens(body, "tick", true).empty())
                continue;
            ctx.emit(pos, "obs-progress-units",
                     std::string(entry) +
                         " body in bench/ never calls "
                         "ProgressTracker::tick; fan-outs must report "
                         "progress so status files show completion and "
                         "throughput (see src/obs/progress.hh)");
        }
    }
}

void
rulePerfHotAlloc(const Ctx &ctx)
{
    // Hot-kernel scope: the inner-loop kernel layer (src/kernels/),
    // plus any file opting in with the hot-path marker (parsed into
    // FileMarkers by parseSuppressions; spelled nowhere in this file
    // so the linter cannot mark itself hot).  These
    // regions run millions of times per experiment; a heap allocation
    // (or a std::function dispatch, which usually allocates) on such a
    // path is a per-call cost the kernel layer exists to eliminate.
    // Construction-time allocation is fine — carry an audited
    // suppression saying so.
    const bool hot =
        startsWith(ctx.relPath, "src/kernels/") || ctx.markers.hotPath;
    if (!hot)
        return;
    const std::string &code = ctx.scan.code;

    for (std::size_t pos : findTokens(code, "new", false))
        ctx.emit(pos, "perf-hot-alloc",
                 "'new' in a hot kernel; use stack storage or a "
                 "caller-provided buffer (construction-time allocation "
                 "carries an audited suppression)");

    // make_unique/make_shared are matched as bare tokens (not call
    // sites) so explicit template arguments — `make_unique<T>(...)` —
    // are still caught.
    struct Alloc { const char *name; bool call; };
    static const Alloc allocCalls[] = {{"malloc", true},
                                       {"calloc", true},
                                       {"realloc", true},
                                       {"make_unique", false},
                                       {"make_shared", false}};
    for (const auto &[t, call] : allocCalls)
        for (std::size_t pos : findTokens(code, t, call))
            ctx.emit(pos, "perf-hot-alloc",
                     std::string("'") + t + "' allocates in a hot "
                         "kernel; use stack storage or a caller-provided "
                         "buffer (construction-time allocation carries "
                         "an audited suppression)");

    for (std::size_t pos : findTokens(code, "function", false)) {
        // Only std::function (:: qualified); plain identifiers named
        // `function` in prose-like code stay quiet.
        if (pos < 2 || code.compare(pos - 2, 2, "::") != 0)
            continue;
        ctx.emit(pos, "perf-hot-alloc",
                 "'std::function' in a hot kernel type-erases and "
                 "usually heap-allocates per construction; take a "
                 "template callable or inline the expression");
    }

    const std::vector<std::size_t> reserves =
        findTokens(code, "reserve", true);
    static const char *growers[] = {"push_back", "emplace_back"};
    for (const char *t : growers) {
        for (std::size_t pos : findTokens(code, t, true)) {
            const bool reservedBefore =
                std::any_of(reserves.begin(), reserves.end(),
                            [&](std::size_t r) { return r < pos; });
            if (reservedBefore)
                continue;
            ctx.emit(pos, "perf-hot-alloc",
                     std::string("'") + t + "' with no preceding "
                         "reserve() in a hot kernel reallocates as it "
                         "grows; reserve the final size first");
        }
    }

    // A sized local vector (`std::vector<T> name(n)`) allocates per
    // call.  Declarations without a parenthesized initializer (member
    // fields, signatures) don't match.
    if (!ctx.scope.header) {
        static const std::regex sizedVec(
            R"(vector\s*<[^;{}()]*>\s+\w+\s*\()");
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            sizedVec);
             it != std::sregex_iterator(); ++it)
            ctx.emit(static_cast<std::size_t>(it->position()),
                     "perf-hot-alloc",
                     "sized std::vector local allocates per call in a "
                     "hot kernel; use a caller-provided buffer or "
                     "justify with an audited suppression");
    }
}

void
runFileRules(const Ctx &ctx)
{
    ruleDetEntropy(ctx);
    ruleDetWallclock(ctx);
    ruleDetUnordered(ctx);
    ruleDetSharedRng(ctx);
    ruleNumFloatEq(ctx);
    ruleNumFloatNarrow(ctx);
    ruleHygPragmaOnce(ctx);
    ruleHygUsingNamespace(ctx);
    ruleHygIostream(ctx);
    ruleObsSpanLeak(ctx);
    ruleObsProgressUnits(ctx);
    rulePerfHotAlloc(ctx);
}

void
sortDiags(std::vector<Diagnostic> &diags)
{
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    diags.erase(std::unique(diags.begin(), diags.end()), diags.end());
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/** Everything phase 1 produces for one file; built in parallel, one
 *  task per file, then consumed serially by phase 2. */
struct PerFile
{
    std::string rel;
    std::vector<Diagnostic> diags; ///< token rules + bad suppressions
    std::vector<Suppression> supps;
    FileIndex index;
    std::string readError;
};

PerFile
scanOneFile(const std::filesystem::path &full, const std::string &rel)
{
    PerFile out;
    out.rel = rel;
    std::ifstream in(full, std::ios::binary);
    if (!in) {
        out.readError = "cannot read " + full.string();
        return out;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();

    const Scan scan = scanSource(content);
    const PathScope scope = classify(rel);
    FileMarkers markers;
    out.supps = parseSuppressions(scan, rel, out.diags, &markers);
    Ctx ctx{rel, scope, scan, markers, out.diags};
    runFileRules(ctx);
    out.index = buildFileIndex(rel, content, scan, markers);
    return out;
}

bool
hasLintExtension(const std::filesystem::path &p)
{
    static const std::set<std::string> exts = {".cc", ".cpp", ".cxx",
                                               ".hh", ".h",   ".hpp"};
    return exts.count(p.extension().string()) > 0;
}

/**
 * Collect lintable files under root/relDir into @p out as (full path,
 * lexical relative path) pairs.  Directory symlinks are followed (a
 * linked subtree is part of the tree it is reachable from), with a
 * depth cap so a symlink cycle terminates instead of recursing
 * forever.  Relative paths are computed lexically from the iterator's
 * spelling — never via canonicalization — so a file reached through a
 * symlink keeps its in-tree path and rule scoping.
 */
void
collectFiles(const std::filesystem::path &root, const std::string &relDir,
             std::vector<std::pair<std::filesystem::path, std::string>> &out)
{
    namespace fs = std::filesystem;
    const fs::path full = root / relDir;
    std::error_code ec;
    auto it = fs::recursive_directory_iterator(
        full, fs::directory_options::follow_directory_symlink, ec);
    for (; !ec && it != fs::recursive_directory_iterator();
         it.increment(ec)) {
        if (it.depth() >= 32)
            it.disable_recursion_pending();
        std::error_code typeEc;
        if (!it->is_regular_file(typeEc) || typeEc)
            continue;
        if (!hasLintExtension(it->path()))
            continue;
        const std::string rel =
            it->path().lexically_relative(root).generic_string();
        out.push_back({it->path(), rel});
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"det-entropy",
         "no rand()/srand()/std::random_device/time()/gettimeofday "
         "outside src/util/random, src/stats, src/util/logging"},
        {"det-wallclock",
         "no std::chrono clock reads on src/ model paths (stats and "
         "logging own timing)"},
        {"det-unordered",
         "no std::unordered_{map,set} in src/ without an audited "
         "justification (iteration order is unspecified)"},
        {"det-shared-rng",
         "parallelFor/parallelMap bodies must derive Rng streams via "
         "Rng::split, never draw from a shared stream"},
        {"det-par-capture",
         "parallelFor/parallelMap lambdas must not mutate or "
         "accumulate into by-reference captures order-dependently; "
         "write per-index slots or merge after the fan-out"},
        {"num-float-eq",
         "no ==/!= against floating-point literals"},
        {"num-float-narrow",
         "no 'float' in src/ (the model is double-throughout)"},
        {"lay-edge",
         "every cross-module include under src/ needs a `uses` edge "
         "or per-file exception in tools/lint/layers.toml (never "
         "inline-suppressible)"},
        {"lay-cycle",
         "the file-level include graph must be acyclic (never "
         "inline-suppressible)"},
        {"lay-module",
         "every src/ module must be declared in tools/lint/layers.toml "
         "(never inline-suppressible)"},
        {"lay-unused-edge",
         "declared edges, exception entries, and module tables that "
         "match nothing are stale and must be removed (never "
         "inline-suppressible)"},
        {"lay-manifest",
         "tools/lint/layers.toml must parse and its `uses` edges must "
         "form a DAG (never inline-suppressible)"},
        {"exc-contract",
         "a `throw <Type>` inside module M must name a type in M's "
         "throws = [...] list in tools/lint/layers.toml"},
        {"atomics-relaxed",
         "every memory_order_relaxed needs an audited "
         "allow(atomics-relaxed) or the file-level "
         "'eval-lint: counters-only <why>' marker"},
        {"hyg-pragma-once", "every header starts with #pragma once"},
        {"hyg-using-namespace", "no 'using namespace' at header scope"},
        {"hyg-iostream",
         "no std::cout/std::cerr/printf in src/ (use util/logging)"},
        {"obs-span-leak",
         "spans are RAII-only: no heap/pointer/reference ScopedSpan "
         "and no raw begin/end span calls outside src/trace"},
        {"obs-progress-units",
         "every parallelFor/parallelMap in bench/ must tick a "
         "ProgressTracker (or carry an audited suppression)"},
        {"perf-hot-alloc",
         "no heap allocation (new, malloc, make_unique/shared, "
         "std::function, unreserved push_back, sized vector locals) in "
         "hot kernels: src/kernels/ and files marked "
         "'eval-lint: hot-path'"},
        {"lint-bad-suppression",
         "suppressions must name known rules and carry a justification "
         "(reported, never suppressible)"},
        {"lint-unused-suppression",
         "suppressions that match no finding are findings themselves "
         "(reported, never suppressible)"},
    };
    return catalog;
}

bool
isKnownRule(const std::string &id)
{
    const auto &cat = ruleCatalog();
    return std::any_of(cat.begin(), cat.end(),
                       [&](const RuleInfo &r) { return r.id == id; });
}

std::vector<Diagnostic>
lintSource(const std::string &relPath, const std::string &content)
{
    const Scan scan = scanSource(content);
    const PathScope scope = classify(relPath);
    std::vector<Diagnostic> diags;
    FileMarkers markers;
    std::vector<Suppression> supps =
        parseSuppressions(scan, relPath, diags, &markers);
    Ctx ctx{relPath, scope, scan, markers, diags};
    runFileRules(ctx);

    // Single-file semantic passes: with no manifest the layering and
    // exception-contract passes skip themselves; the atomics audit and
    // determinism data-flow need only this file's index.
    ProjectIndex pidx;
    pidx.files.push_back(buildFileIndex(relPath, content, scan, markers));
    LayersManifest noManifest;
    PassOptions popts;
    popts.fullTree = false;
    auto passDiags = runProjectPasses(pidx, noManifest, {}, popts);
    diags.insert(diags.end(),
                 std::make_move_iterator(passDiags.begin()),
                 std::make_move_iterator(passDiags.end()));

    applySuppressions(diags, supps, relPath);
    sortDiags(diags);
    return diags;
}

std::vector<Diagnostic>
runLint(const Options &opts, std::string *error)
{
    namespace fs = std::filesystem;
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return std::vector<Diagnostic>{};
    };

    // Canonicalize the root only: `tree`, `tree/`, and `link-to-tree`
    // must behave identically, but paths *below* the root stay
    // lexical so symlinked subtrees keep their in-tree spelling.
    std::error_code ec;
    const fs::path root = fs::weakly_canonical(opts.root, ec);
    if (ec || !fs::is_directory(root))
        return fail("lint root is not a directory: " + opts.root.string());

    static const char *defaultPaths[] = {"src", "bench", "tests",
                                         "examples", "tools"};

    // The index always covers the default set so project passes see
    // the whole tree; explicitly requested paths scope which files
    // findings are *reported* for.
    std::vector<std::pair<fs::path, std::string>> files;
    for (const char *p : defaultPaths)
        if (fs::is_directory(root / p))
            collectFiles(root, p, files);

    std::set<std::string> requested;
    for (const auto &p : opts.paths) {
        const fs::path full = root / p;
        if (fs::is_regular_file(full)) {
            const std::string rel =
                fs::path(p).lexically_normal().generic_string();
            files.push_back({full, rel});
            requested.insert(rel);
            continue;
        }
        if (!fs::is_directory(full))
            return fail("no such file or directory: " + full.string());
        std::vector<std::pair<fs::path, std::string>> sub;
        collectFiles(root, p, sub);
        for (auto &fp : sub)
            requested.insert(fp.second);
        files.insert(files.end(), sub.begin(), sub.end());
    }

    const auto excluded = [&](const std::string &rel) {
        return std::any_of(opts.excludes.begin(), opts.excludes.end(),
                           [&](const std::string &x) {
                               return rel.find(x) != std::string::npos;
                           });
    };

    // Sort + dedupe by relative path (a file reachable both directly
    // and through a symlinked directory is linted once, under the
    // lexically smallest spelling it was found by).
    std::sort(files.begin(), files.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    files.erase(std::unique(files.begin(), files.end(),
                            [](const auto &a, const auto &b) {
                                return a.second == b.second;
                            }),
                files.end());
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const auto &fp) {
                                   return excluded(fp.second);
                               }),
                files.end());

    // Phase 1 in parallel: scan, token rules, suppressions, index.
    // parallelMap returns results in index order over the sorted file
    // list, so the outcome is independent of the thread count.
    const std::size_t jobs =
        opts.jobs > 0 ? opts.jobs : eval::defaultThreads();
    eval::ThreadPool pool(std::max<std::size_t>(jobs, 1));
    std::vector<PerFile> scanned =
        pool.parallelMap(files.size(), [&](std::size_t i) {
            return scanOneFile(files[i].first, files[i].second);
        });
    for (const auto &pf : scanned)
        if (!pf.readError.empty())
            return fail(pf.readError);

    // Layering manifest: explicit path, else auto-discovery.
    fs::path manifestPath;
    std::string manifestRel;
    if (!opts.layersFile.empty()) {
        manifestPath = opts.layersFile.is_absolute()
                           ? opts.layersFile
                           : root / opts.layersFile;
        if (!fs::is_regular_file(manifestPath))
            return fail("layers manifest not found: " +
                        manifestPath.string());
        const fs::path rel = manifestPath.lexically_relative(root);
        manifestRel = (rel.empty() || *rel.begin() == "..")
                          ? manifestPath.generic_string()
                          : rel.generic_string();
    } else {
        for (const char *cand : {"tools/lint/layers.toml", "layers.toml"}) {
            if (fs::is_regular_file(root / cand)) {
                manifestPath = root / cand;
                manifestRel = cand;
                break;
            }
        }
    }

    LayersManifest manifest;
    std::vector<std::string> manifestErrors;
    if (!manifestPath.empty()) {
        std::ifstream in(manifestPath, std::ios::binary);
        if (!in)
            return fail("cannot read " + manifestPath.string());
        std::ostringstream buf;
        buf << in.rdbuf();
        manifest = parseLayers(buf.str(), manifestErrors);
        manifest.path = manifestRel;
    }

    // Phase 2: project passes over the full index.
    ProjectIndex pidx;
    pidx.files.reserve(scanned.size());
    for (auto &pf : scanned)
        pidx.files.push_back(pf.index);

    PassOptions popts;
    popts.fullTree = opts.paths.empty();
    popts.manifestRel = manifestRel;
    auto passDiags =
        runProjectPasses(pidx, manifest, manifestErrors, popts);

    std::map<std::string, std::vector<Diagnostic>> passByFile;
    for (auto &d : passDiags)
        passByFile[d.file].push_back(std::move(d));

    // Merge per file, apply that file's suppressions over everything
    // (token rules and pass findings alike), and scope the output to
    // the requested set.
    std::vector<Diagnostic> diags;
    std::set<std::string> scannedRel;
    for (auto &pf : scanned) {
        scannedRel.insert(pf.rel);
        if (!requested.empty() && !requested.count(pf.rel))
            continue;
        std::vector<Diagnostic> merged = std::move(pf.diags);
        auto it = passByFile.find(pf.rel);
        if (it != passByFile.end())
            merged.insert(merged.end(),
                          std::make_move_iterator(it->second.begin()),
                          std::make_move_iterator(it->second.end()));
        applySuppressions(merged, pf.supps, pf.rel);
        diags.insert(diags.end(),
                     std::make_move_iterator(merged.begin()),
                     std::make_move_iterator(merged.end()));
    }
    // Manifest-anchored findings (lay-manifest, lay-unused-edge) have
    // no scanned file to ride on; always surface them.
    for (auto &[file, fileDiags] : passByFile) {
        if (scannedRel.count(file))
            continue;
        diags.insert(diags.end(),
                     std::make_move_iterator(fileDiags.begin()),
                     std::make_move_iterator(fileDiags.end()));
    }

    sortDiags(diags);
    return diags;
}

int
exitCodeFor(const std::vector<Diagnostic> &diags)
{
    return diags.empty() ? 0 : 1;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream out;
    out << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message;
    return out.str();
}

std::string
toJson(const std::vector<Diagnostic> &diags)
{
    const auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char hex[8];
                    std::snprintf(hex, sizeof hex, "\\u%04x", c);
                    out += hex;
                } else {
                    out += c;
                }
            }
        }
        return out;
    };
    std::ostringstream out;
    out << "[\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const auto &d = diags[i];
        out << "  {\"file\": \"" << escape(d.file) << "\", \"line\": "
            << d.line << ", \"rule\": \"" << escape(d.rule)
            << "\", \"message\": \"" << escape(d.message) << "\"}"
            << (i + 1 < diags.size() ? "," : "") << '\n';
    }
    out << "]\n";
    return out.str();
}

} // namespace eval::lint
