#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace eval::lint {

namespace {

// ---------------------------------------------------------------------------
// Source scanning: blank out comments and string/char literals so token
// matching never fires inside them, while collecting comment text per
// line for suppression parsing.  The blanked copy has the same length
// and the same newlines as the input, so offsets and line numbers map
// one-to-one.
// ---------------------------------------------------------------------------

struct Scan
{
    std::string code; ///< literals/comments blanked
    /** line -> `//`-comment text.  Only line comments can carry
     *  suppressions; block/doxygen comments are prose and may quote
     *  the suppression syntax without activating it. */
    std::map<int, std::string> lineComments;
    std::vector<std::size_t> lineStart; ///< offset of each line's start
};

Scan
scanSource(const std::string &in)
{
    Scan scan;
    scan.code.assign(in.size(), ' ');
    scan.lineStart.push_back(0);

    enum class St { Code, LineComment, BlockComment, Str, Chr, RawStr };
    St st = St::Code;
    int line = 1;
    std::string rawDelim; // for raw strings: ")delim\""

    auto comment = [&](char c) { scan.lineComments[line].push_back(c); };

    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        if (c == '\n') {
            scan.code[i] = '\n';
            ++line;
            scan.lineStart.push_back(i + 1);
            if (st == St::LineComment)
                st = St::Code;
            continue;
        }
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::LineComment;
                comment(c);
            } else if (c == '/' && n == '*') {
                st = St::BlockComment;
            } else if (c == '"') {
                // Raw string?  Look back for an R prefix (R, uR, u8R,
                // UR, LR) that is not part of a longer identifier.
                bool raw = false;
                if (i > 0 && in[i - 1] == 'R') {
                    std::size_t p = i - 1;
                    while (p > 0 && std::isalnum(
                                        static_cast<unsigned char>(in[p - 1])))
                        --p;
                    const std::string prefix = in.substr(p, i - p);
                    raw = prefix == "R" || prefix == "uR" || prefix == "u8R" ||
                          prefix == "UR" || prefix == "LR";
                }
                if (raw) {
                    rawDelim = ")";
                    for (std::size_t j = i + 1;
                         j < in.size() && in[j] != '('; ++j)
                        rawDelim.push_back(in[j]);
                    rawDelim.push_back('"');
                    st = St::RawStr;
                } else {
                    st = St::Str;
                }
                scan.code[i] = '"';
            } else if (c == '\'') {
                st = St::Chr;
                scan.code[i] = '\'';
            } else {
                scan.code[i] = c;
            }
            break;
        case St::LineComment:
            comment(c);
            break;
        case St::BlockComment:
            if (c == '*' && n == '/') {
                ++i;
                st = St::Code;
            }
            break;
        case St::Str:
            if (c == '\\')
                ++i; // skip escaped char (stays blanked)
            else if (c == '"') {
                scan.code[i] = '"';
                st = St::Code;
            }
            break;
        case St::Chr:
            if (c == '\\')
                ++i;
            else if (c == '\'') {
                scan.code[i] = '\'';
                st = St::Code;
            }
            break;
        case St::RawStr:
            if (c == rawDelim[0] &&
                in.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                scan.code[i] = '"';
                st = St::Code;
            }
            break;
        }
    }
    return scan;
}

int
lineOf(const Scan &scan, std::size_t offset)
{
    auto it = std::upper_bound(scan.lineStart.begin(), scan.lineStart.end(),
                               offset);
    return static_cast<int>(it - scan.lineStart.begin());
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Find boundary-checked occurrences of @p name in blanked code.  With
 *  @p callParen the next non-space char must be '(' (a call site). */
std::vector<std::size_t>
findTokens(const std::string &code, const std::string &name, bool callParen)
{
    std::vector<std::size_t> hits;
    for (std::size_t pos = code.find(name); pos != std::string::npos;
         pos = code.find(name, pos + 1)) {
        if (pos > 0 && identChar(code[pos - 1]))
            continue;
        std::size_t end = pos + name.size();
        if (end < code.size() && identChar(code[end]))
            continue;
        if (callParen) {
            while (end < code.size() &&
                   (code[end] == ' ' || code[end] == '\t'))
                ++end;
            if (end >= code.size() || code[end] != '(')
                continue;
        }
        hits.push_back(pos);
    }
    return hits;
}

// ---------------------------------------------------------------------------
// Suppressions (see lint.hh for the syntax; line comments only)
// ---------------------------------------------------------------------------

struct Suppression
{
    int line = 0;          ///< line the allow() comment sits on
    int coveredLine = 0;   ///< line whose findings it suppresses
    std::vector<std::string> rules;
    bool used = false;
};

std::string
trimmed(std::string s)
{
    const auto notSpace = [](unsigned char c) { return !std::isspace(c); };
    s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
    s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
    return s;
}

bool
lineIsBlankCode(const Scan &scan, int line)
{
    if (line < 1 || line > static_cast<int>(scan.lineStart.size()))
        return true;
    std::size_t begin = scan.lineStart[line - 1];
    std::size_t end = line < static_cast<int>(scan.lineStart.size())
                          ? scan.lineStart[line]
                          : scan.code.size();
    for (std::size_t i = begin; i < end; ++i) {
        const char c = scan.code[i];
        if (!std::isspace(static_cast<unsigned char>(c)) && c != '"' &&
            c != '\'')
            return false;
    }
    return true;
}

/** Parse suppressions out of the collected comments.  Malformed ones
 *  (no rule list, unknown rule, missing justification) become
 *  lint-bad-suppression findings immediately. */
std::vector<Suppression>
parseSuppressions(const Scan &scan, const std::string &relPath,
                  std::vector<Diagnostic> &diags)
{
    static const std::regex allowRe(
        R"(eval-lint:\s*allow\(([^)]*)\)(.*))");
    std::vector<Suppression> supps;
    for (const auto &[line, text] : scan.lineComments) {
        if (text.find("eval-lint") == std::string::npos)
            continue;
        // The hot-path marker widens perf-hot-alloc's scope to this
        // file (see rulePerfHotAlloc); it is not a suppression.
        static const std::regex hotRe(R"(eval-lint:\s*hot-path\b)");
        if (std::regex_search(text, hotRe))
            continue;
        std::smatch m;
        if (!std::regex_search(text, m, allowRe)) {
            diags.push_back({relPath, line, "lint-bad-suppression",
                             "malformed eval-lint comment; expected "
                             "'eval-lint: allow(<rule>) <justification>'"});
            continue;
        }
        Suppression s;
        s.line = line;
        // A trailing comment covers its own line; a comment-only line
        // covers the next code line, skipping the rest of a multi-line
        // justification (bounded so a suppression cannot drift far
        // from its target).
        s.coveredLine = line;
        if (lineIsBlankCode(scan, line)) {
            const int limit =
                std::min(line + 10, static_cast<int>(scan.lineStart.size()));
            for (int l = line + 1; l <= limit; ++l) {
                if (!lineIsBlankCode(scan, l)) {
                    s.coveredLine = l;
                    break;
                }
            }
        }
        std::stringstream ruleList(m[1].str());
        std::string rule;
        bool ok = true;
        while (std::getline(ruleList, rule, ',')) {
            rule = trimmed(rule);
            if (rule.empty())
                continue;
            if (!isKnownRule(rule) || rule.rfind("lint-", 0) == 0) {
                diags.push_back({relPath, line, "lint-bad-suppression",
                                 "suppression names unknown or "
                                 "non-suppressible rule '" + rule + "'"});
                ok = false;
                continue;
            }
            s.rules.push_back(rule);
        }
        if (s.rules.empty() && ok) {
            diags.push_back({relPath, line, "lint-bad-suppression",
                             "suppression lists no rules"});
            ok = false;
        }
        std::string just = trimmed(m[2].str());
        if (just.size() >= 2 && just.compare(just.size() - 2, 2, "*/") == 0)
            just = trimmed(just.substr(0, just.size() - 2));
        if (just.empty()) {
            diags.push_back({relPath, line, "lint-bad-suppression",
                             "suppression has no justification text; "
                             "every allowance must say why it is safe"});
            ok = false;
        }
        if (ok)
            supps.push_back(std::move(s));
    }
    return supps;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

struct PathScope
{
    bool header = false;      ///< .hh/.h/.hpp
    bool inSrc = false;       ///< under src/
    bool timingExempt = false;  ///< entropy abstraction, stats, logging
    bool iostreamExempt = false; ///< the logging sink itself
};

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

PathScope
classify(const std::string &relPath)
{
    PathScope ps;
    const auto dot = relPath.find_last_of('.');
    const std::string ext =
        dot == std::string::npos ? "" : relPath.substr(dot);
    ps.header = ext == ".hh" || ext == ".h" || ext == ".hpp";
    ps.inSrc = startsWith(relPath, "src/");
    ps.timingExempt = startsWith(relPath, "src/util/random") ||
                      startsWith(relPath, "src/util/logging") ||
                      startsWith(relPath, "src/stats/") ||
                      startsWith(relPath, "src/trace/") ||
                      startsWith(relPath, "src/obs/");
    ps.iostreamExempt = startsWith(relPath, "src/util/logging");
    return ps;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct Ctx
{
    const std::string &relPath;
    const PathScope &scope;
    const Scan &scan;
    std::vector<Diagnostic> &diags;

    void
    emit(std::size_t offset, const char *rule, std::string message) const
    {
        diags.push_back({relPath, lineOf(scan, offset), rule,
                         std::move(message)});
    }
};

void
ruleDetEntropy(const Ctx &ctx)
{
    if (ctx.scope.timingExempt)
        return;
    struct Tok { const char *name; bool call; };
    static const Tok toks[] = {
        {"rand", true},          {"srand", true},
        {"random_device", false}, {"time", true},
        {"clock", true},         {"gettimeofday", true},
        {"clock_gettime", true}, {"timespec_get", true},
    };
    for (const auto &t : toks)
        for (std::size_t pos : findTokens(ctx.scan.code, t.name, t.call))
            ctx.emit(pos, "det-entropy",
                     std::string("nondeterministic entropy/time source '") +
                         t.name + "'; draw from eval::Rng (src/util/random) "
                         "so every run reproduces from its seed");
}

void
ruleDetWallclock(const Ctx &ctx)
{
    if (!ctx.scope.inSrc || ctx.scope.timingExempt)
        return;
    static const char *toks[] = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "utc_clock", "file_clock",
    };
    for (const char *t : toks)
        for (std::size_t pos : findTokens(ctx.scan.code, t, false))
            ctx.emit(pos, "det-wallclock",
                     std::string("wall-clock type '") + t +
                         "' on a model path; timing belongs to the "
                         "stats/profiling layer (src/stats) or logging "
                         "timestamps");
}

void
ruleDetUnordered(const Ctx &ctx)
{
    if (!ctx.scope.inSrc)
        return;
    static const char *toks[] = {
        "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset",
    };
    for (const char *t : toks) {
        for (std::size_t pos : findTokens(ctx.scan.code, t, false)) {
            // Skip the #include line; the declaration is the
            // actionable site and one finding per site is enough.
            std::size_t ls = ctx.scan.lineStart[lineOf(ctx.scan, pos) - 1];
            while (ls < pos && std::isspace(
                                   static_cast<unsigned char>(
                                       ctx.scan.code[ls])))
                ++ls;
            if (ctx.scan.code[ls] == '#')
                continue;
            ctx.emit(pos, "det-unordered",
                     std::string("'std::") + t + "' in model code: "
                         "iteration order is unspecified and can leak "
                         "into float accumulation or output ordering; "
                         "use an ordered container or suppress with a "
                         "justification");
        }
    }
}

void
ruleDetSharedRng(const Ctx &ctx)
{
    const std::string &code = ctx.scan.code;
    static const char *entries[] = {"parallelFor", "parallelMap"};
    static const char *draws[] = {"uniform",   "uniformInt", "gaussian",
                                  "bernoulli", "fork",       "next"};
    for (const char *entry : entries) {
        for (std::size_t pos : findTokens(code, entry, true)) {
            std::size_t open = code.find('(', pos);
            int depth = 0;
            std::size_t close = open;
            for (std::size_t i = open; i < code.size(); ++i) {
                if (code[i] == '(')
                    ++depth;
                else if (code[i] == ')' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            if (close == open)
                continue; // unbalanced (partial file); nothing to scan
            const std::string body = code.substr(open, close - open);
            if (!findTokens(body, "split", false).empty())
                continue; // split-derived streams inside the region
            for (const char *d : draws) {
                for (std::size_t rel : findTokens(body, d, true)) {
                    // Only member calls: `.draw(` or `->draw(`.
                    const std::size_t abs = open + rel;
                    const char prev = abs > 0 ? code[abs - 1] : '\0';
                    const bool member =
                        prev == '.' ||
                        (prev == '>' && abs > 1 && code[abs - 2] == '-');
                    if (!member)
                        continue;
                    ctx.emit(abs, "det-shared-rng",
                             std::string("Rng::") + d + " drawn inside a " +
                                 entry + " body with no Rng::split in the "
                                 "region; derive a per-task stream with "
                                 "split(index) so results are independent "
                                 "of the schedule");
                }
            }
        }
    }
}

void
ruleNumFloatEq(const Ctx &ctx)
{
    // A floating literal (1.0, .5, 2e-3, 1.5e8f) adjacent to == or !=.
    static const std::regex re(
        R"((==|!=)\s*[+-]?((\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fFlL]?)"
        R"(|((\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fFlL]?\s*(==|!=))");
    const std::string &code = ctx.scan.code;
    std::set<int> seen;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
        const int line = lineOf(ctx.scan, it->position());
        if (!seen.insert(line).second)
            continue;
        ctx.emit(it->position(), "num-float-eq",
                 "exact floating-point equality comparison; compare "
                 "against a tolerance or restructure to integer state");
    }
}

void
ruleNumFloatNarrow(const Ctx &ctx)
{
    if (!ctx.scope.inSrc)
        return;
    for (std::size_t pos : findTokens(ctx.scan.code, "float", false))
        ctx.emit(pos, "num-float-narrow",
                 "'float' on a model path narrows double precision; "
                 "the model is double-throughout");
}

void
ruleHygPragmaOnce(const Ctx &ctx)
{
    if (!ctx.scope.header)
        return;
    static const std::regex re(R"(^[ \t]*#[ \t]*pragma[ \t]+once\b)");
    std::istringstream lines(ctx.scan.code);
    std::string line;
    while (std::getline(lines, line))
        if (std::regex_search(line, re))
            return;
    ctx.diags.push_back({ctx.relPath, 1, "hyg-pragma-once",
                         "header is missing '#pragma once'"});
}

void
ruleHygUsingNamespace(const Ctx &ctx)
{
    if (!ctx.scope.header)
        return;
    for (std::size_t pos : findTokens(ctx.scan.code, "using", false)) {
        std::size_t p = pos + 5;
        while (p < ctx.scan.code.size() &&
               std::isspace(static_cast<unsigned char>(ctx.scan.code[p])))
            ++p;
        if (ctx.scan.code.compare(p, 9, "namespace") == 0 &&
            (p + 9 >= ctx.scan.code.size() ||
             !identChar(ctx.scan.code[p + 9])))
            ctx.emit(pos, "hyg-using-namespace",
                     "'using namespace' at header scope pollutes every "
                     "includer");
    }
}

void
ruleHygIostream(const Ctx &ctx)
{
    if (!ctx.scope.inSrc || ctx.scope.iostreamExempt)
        return;
    static const char *qualified[] = {"cout", "cerr", "clog"};
    for (const char *t : qualified) {
        for (std::size_t pos : findTokens(ctx.scan.code, t, false)) {
            // Require std:: (or ::) qualification so local identifiers
            // named e.g. `cout` in unrelated code don't trip it.
            if (pos < 2 || ctx.scan.code.compare(pos - 2, 2, "::") != 0)
                continue;
            ctx.emit(pos, "hyg-iostream",
                     std::string("'std::") + t + "' in library code; "
                         "use the logging layer (util/logging.hh) or "
                         "take an std::ostream&");
        }
    }
    static const char *printers[] = {"printf", "fprintf", "puts", "fputs"};
    for (const char *t : printers)
        for (std::size_t pos : findTokens(ctx.scan.code, t, true))
            ctx.emit(pos, "hyg-iostream",
                     std::string("'") + t + "' in library code; use the "
                         "logging layer (util/logging.hh)");
}

void
ruleObsSpanLeak(const Ctx &ctx)
{
    // ScopedSpan IS its scope: a heap span, a span pointer/reference,
    // or a raw begin/end handle call produces overlapping events the
    // Perfetto exporter cannot nest.  src/trace owns the raw API.
    if (startsWith(ctx.relPath, "src/trace/"))
        return;
    const std::string &code = ctx.scan.code;
    for (std::size_t pos : findTokens(code, "ScopedSpan", false)) {
        std::size_t before = pos;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(code[before - 1])))
            --before;
        const bool heap =
            before >= 3 && code.compare(before - 3, 3, "new") == 0 &&
            (before == 3 || !identChar(code[before - 4]));
        if (heap) {
            ctx.emit(pos, "obs-span-leak",
                     "heap-allocated ScopedSpan outlives its lexical "
                     "scope; declare it as a stack local so the span "
                     "closes where it opened");
            continue;
        }
        std::size_t after = pos + 10; // past "ScopedSpan"
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after])))
            ++after;
        if (after < code.size() &&
            (code[after] == '*' || code[after] == '&')) {
            ctx.emit(pos, "obs-span-leak",
                     "ScopedSpan pointer/reference lets a span handle "
                     "escape its scope; pass data, not spans, and open "
                     "a new span in the callee");
        }
    }
    static const char *rawApi[] = {"beginSpanImpl", "endSpanImpl",
                                   "pushOpenSpan", "popOpenSpan"};
    for (const char *t : rawApi)
        for (std::size_t pos : findTokens(code, t, true))
            ctx.emit(pos, "obs-span-leak",
                     std::string("raw span handle API '") + t +
                         "' outside src/trace; use the RAII ScopedSpan "
                         "so every span closes in the scope that "
                         "opened it");
}

void
ruleObsProgressUnits(const Ctx &ctx)
{
    // Every parallel fan-out in bench/ is user-visible work: it must
    // tick a ProgressTracker so the status file (and eval_top) can
    // show completion, throughput, and ETA for the run.  A fan-out
    // whose progress is reported elsewhere carries an audited
    // suppression.
    if (!startsWith(ctx.relPath, "bench/"))
        return;
    const std::string &code = ctx.scan.code;
    static const char *entries[] = {"parallelFor", "parallelMap"};
    for (const char *entry : entries) {
        for (std::size_t pos : findTokens(code, entry, true)) {
            std::size_t open = code.find('(', pos);
            int depth = 0;
            std::size_t close = open;
            for (std::size_t i = open; i < code.size(); ++i) {
                if (code[i] == '(')
                    ++depth;
                else if (code[i] == ')' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            if (close == open)
                continue; // unbalanced (partial file); nothing to scan
            const std::string body = code.substr(open, close - open);
            // A fan-out call site passes a lambda; a region without
            // one is the pool's own declaration/definition.
            if (body.find('[') == std::string::npos)
                continue;
            if (!findTokens(body, "tick", true).empty())
                continue;
            ctx.emit(pos, "obs-progress-units",
                     std::string(entry) +
                         " body in bench/ never calls "
                         "ProgressTracker::tick; fan-outs must report "
                         "progress so status files show completion and "
                         "throughput (see src/obs/progress.hh)");
        }
    }
}

void
rulePerfHotAlloc(const Ctx &ctx)
{
    // Hot-kernel scope: the inner-loop kernel layer (src/kernels/),
    // plus any file opting in with the hot-path marker comment (see
    // hotMarker).  These regions run millions of times per experiment;
    // a heap allocation (or a std::function dispatch, which usually
    // allocates) on such a path is a per-call cost the kernel layer
    // exists to eliminate.  Construction-time allocation is fine —
    // carry an audited suppression saying so.
    // Built from pieces so this file's own comments cannot contain the
    // marker and mark the linter hot.
    static const std::string hotMarker =
        std::string("eval-lint: ") + "hot-path";
    bool hot = startsWith(ctx.relPath, "src/kernels/");
    if (!hot) {
        for (const auto &[line, text] : ctx.scan.lineComments) {
            (void)line;
            if (text.find(hotMarker) != std::string::npos) {
                hot = true;
                break;
            }
        }
    }
    if (!hot)
        return;
    const std::string &code = ctx.scan.code;

    for (std::size_t pos : findTokens(code, "new", false))
        ctx.emit(pos, "perf-hot-alloc",
                 "'new' in a hot kernel; use stack storage or a "
                 "caller-provided buffer (construction-time allocation "
                 "carries an audited suppression)");

    // make_unique/make_shared are matched as bare tokens (not call
    // sites) so explicit template arguments — `make_unique<T>(...)` —
    // are still caught.
    struct Alloc { const char *name; bool call; };
    static const Alloc allocCalls[] = {{"malloc", true},
                                       {"calloc", true},
                                       {"realloc", true},
                                       {"make_unique", false},
                                       {"make_shared", false}};
    for (const auto &[t, call] : allocCalls)
        for (std::size_t pos : findTokens(code, t, call))
            ctx.emit(pos, "perf-hot-alloc",
                     std::string("'") + t + "' allocates in a hot "
                         "kernel; use stack storage or a caller-provided "
                         "buffer (construction-time allocation carries "
                         "an audited suppression)");

    for (std::size_t pos : findTokens(code, "function", false)) {
        // Only std::function (:: qualified); plain identifiers named
        // `function` in prose-like code stay quiet.
        if (pos < 2 || code.compare(pos - 2, 2, "::") != 0)
            continue;
        ctx.emit(pos, "perf-hot-alloc",
                 "'std::function' in a hot kernel type-erases and "
                 "usually heap-allocates per construction; take a "
                 "template callable or inline the expression");
    }

    const std::vector<std::size_t> reserves =
        findTokens(code, "reserve", true);
    static const char *growers[] = {"push_back", "emplace_back"};
    for (const char *t : growers) {
        for (std::size_t pos : findTokens(code, t, true)) {
            const bool reservedBefore =
                std::any_of(reserves.begin(), reserves.end(),
                            [&](std::size_t r) { return r < pos; });
            if (reservedBefore)
                continue;
            ctx.emit(pos, "perf-hot-alloc",
                     std::string("'") + t + "' with no preceding "
                         "reserve() in a hot kernel reallocates as it "
                         "grows; reserve the final size first");
        }
    }

    // A sized local vector (`std::vector<T> name(n)`) allocates per
    // call.  Declarations without a parenthesized initializer (member
    // fields, signatures) don't match.
    if (!ctx.scope.header) {
        static const std::regex sizedVec(
            R"(vector\s*<[^;{}()]*>\s+\w+\s*\()");
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            sizedVec);
             it != std::sregex_iterator(); ++it)
            ctx.emit(static_cast<std::size_t>(it->position()),
                     "perf-hot-alloc",
                     "sized std::vector local allocates per call in a "
                     "hot kernel; use a caller-provided buffer or "
                     "justify with an audited suppression");
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/** Rules whose finding is anchored to line 1 but describes the whole
 *  file; a suppression anywhere in the file covers them. */
bool
fileScoped(const std::string &rule)
{
    return rule == "hyg-pragma-once";
}

void
applySuppressions(std::vector<Diagnostic> &diags,
                  std::vector<Suppression> &supps,
                  const std::string &relPath)
{
    std::vector<Diagnostic> kept;
    for (auto &d : diags) {
        if (startsWith(d.rule, "lint-")) {
            kept.push_back(std::move(d));
            continue;
        }
        bool suppressed = false;
        for (auto &s : supps) {
            const bool ruleMatch =
                std::find(s.rules.begin(), s.rules.end(), d.rule) !=
                s.rules.end();
            if (!ruleMatch)
                continue;
            const bool covers = fileScoped(d.rule) || s.coveredLine == d.line;
            if (covers) {
                s.used = true;
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            kept.push_back(std::move(d));
    }
    for (const auto &s : supps)
        if (!s.used)
            kept.push_back({relPath, s.line, "lint-unused-suppression",
                            "suppression matched no finding; remove it "
                            "so stale allowances cannot accumulate"});
    diags = std::move(kept);
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"det-entropy",
         "no rand()/srand()/std::random_device/time()/gettimeofday "
         "outside src/util/random, src/stats, src/util/logging"},
        {"det-wallclock",
         "no std::chrono clock reads on src/ model paths (stats and "
         "logging own timing)"},
        {"det-unordered",
         "no std::unordered_{map,set} in src/ without an audited "
         "justification (iteration order is unspecified)"},
        {"det-shared-rng",
         "parallelFor/parallelMap bodies must derive Rng streams via "
         "Rng::split, never draw from a shared stream"},
        {"num-float-eq",
         "no ==/!= against floating-point literals"},
        {"num-float-narrow",
         "no 'float' in src/ (the model is double-throughout)"},
        {"hyg-pragma-once", "every header starts with #pragma once"},
        {"hyg-using-namespace", "no 'using namespace' at header scope"},
        {"hyg-iostream",
         "no std::cout/std::cerr/printf in src/ (use util/logging)"},
        {"obs-span-leak",
         "spans are RAII-only: no heap/pointer/reference ScopedSpan "
         "and no raw begin/end span calls outside src/trace"},
        {"obs-progress-units",
         "every parallelFor/parallelMap in bench/ must tick a "
         "ProgressTracker (or carry an audited suppression)"},
        {"perf-hot-alloc",
         "no heap allocation (new, malloc, make_unique/shared, "
         "std::function, unreserved push_back, sized vector locals) in "
         "hot kernels: src/kernels/ and files marked "
         "'eval-lint: hot-path'"},
        {"lint-bad-suppression",
         "suppressions must name known rules and carry a justification "
         "(reported, never suppressible)"},
        {"lint-unused-suppression",
         "suppressions that match no finding are findings themselves "
         "(reported, never suppressible)"},
    };
    return catalog;
}

bool
isKnownRule(const std::string &id)
{
    const auto &cat = ruleCatalog();
    return std::any_of(cat.begin(), cat.end(),
                       [&](const RuleInfo &r) { return r.id == id; });
}

std::vector<Diagnostic>
lintSource(const std::string &relPath, const std::string &content)
{
    const Scan scan = scanSource(content);
    const PathScope scope = classify(relPath);
    std::vector<Diagnostic> diags;
    Ctx ctx{relPath, scope, scan, diags};

    ruleDetEntropy(ctx);
    ruleDetWallclock(ctx);
    ruleDetUnordered(ctx);
    ruleDetSharedRng(ctx);
    ruleNumFloatEq(ctx);
    ruleNumFloatNarrow(ctx);
    ruleHygPragmaOnce(ctx);
    ruleHygUsingNamespace(ctx);
    ruleHygIostream(ctx);
    ruleObsSpanLeak(ctx);
    ruleObsProgressUnits(ctx);
    rulePerfHotAlloc(ctx);

    std::vector<Suppression> supps = parseSuppressions(scan, relPath, diags);
    applySuppressions(diags, supps, relPath);

    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    diags.erase(std::unique(diags.begin(), diags.end()), diags.end());
    return diags;
}

std::vector<Diagnostic>
runLint(const Options &opts, std::string *error)
{
    namespace fs = std::filesystem;
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return std::vector<Diagnostic>{};
    };
    std::error_code ec;
    const fs::path root = fs::weakly_canonical(opts.root, ec);
    if (ec || !fs::is_directory(root))
        return fail("lint root is not a directory: " + opts.root.string());

    std::vector<std::string> paths = opts.paths;
    if (paths.empty())
        paths = {"src", "bench", "tests", "examples", "tools"};

    static const std::set<std::string> exts = {".cc", ".cpp", ".cxx",
                                               ".hh", ".h",   ".hpp"};
    std::vector<fs::path> files;
    for (const auto &p : paths) {
        const fs::path full = root / p;
        if (fs::is_regular_file(full)) {
            files.push_back(full);
            continue;
        }
        if (!fs::is_directory(full)) {
            // Default paths are best-effort (a tree need not have
            // every one); explicitly requested paths must exist.
            if (!opts.paths.empty())
                return fail("no such file or directory: " + full.string());
            continue;
        }
        for (auto it = fs::recursive_directory_iterator(full, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it)
            if (it->is_regular_file() &&
                exts.count(it->path().extension().string()))
                files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Diagnostic> diags;
    for (const auto &file : files) {
        const std::string rel =
            fs::weakly_canonical(file, ec).lexically_relative(root)
                .generic_string();
        const bool excluded = std::any_of(
            opts.excludes.begin(), opts.excludes.end(),
            [&](const std::string &x) {
                return rel.find(x) != std::string::npos;
            });
        if (excluded)
            continue;
        std::ifstream in(file, std::ios::binary);
        if (!in)
            return fail("cannot read " + file.string());
        std::ostringstream buf;
        buf << in.rdbuf();
        auto fileDiags = lintSource(rel, buf.str());
        diags.insert(diags.end(),
                     std::make_move_iterator(fileDiags.begin()),
                     std::make_move_iterator(fileDiags.end()));
    }
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return diags;
}

int
exitCodeFor(const std::vector<Diagnostic> &diags)
{
    return diags.empty() ? 0 : 1;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream out;
    out << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message;
    return out.str();
}

std::string
toJson(const std::vector<Diagnostic> &diags)
{
    const auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char hex[8];
                    std::snprintf(hex, sizeof hex, "\\u%04x", c);
                    out += hex;
                } else {
                    out += c;
                }
            }
        }
        return out;
    };
    std::ostringstream out;
    out << "[\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const auto &d = diags[i];
        out << "  {\"file\": \"" << escape(d.file) << "\", \"line\": "
            << d.line << ", \"rule\": \"" << escape(d.rule)
            << "\", \"message\": \"" << escape(d.message) << "\"}"
            << (i + 1 < diags.size() ? "," : "") << '\n';
    }
    out << "]\n";
    return out.str();
}

} // namespace eval::lint
