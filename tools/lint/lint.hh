/**
 * @file
 * eval-lint: repo-specific static analysis for determinism, numerics,
 * and hygiene invariants.
 *
 * The simulator promises bit-identical Monte Carlo results at any
 * thread count, exact-bit PE cache hits, and goldens pinned to the
 * paper's numbers.  Those invariants are easy to break silently: one
 * stray rand() call, one iteration over an unordered container feeding
 * a float accumulator, one shared Rng drawn from inside a parallelFor.
 * The golden tier catches such breaks end-to-end; this pass catches
 * them at the line that introduces them.
 *
 * The analyzer is token-based (comments and string literals are
 * stripped before matching), walks a tree rooted at Options::root, and
 * scopes each rule by the file's path relative to that root — e.g.
 * hyg-iostream only applies under src/, and det-entropy exempts
 * src/util/random (the entropy abstraction itself).  Findings can be
 * suppressed inline with an audited comment:
 *
 *     // eval-lint: allow(<rule>[,<rule>...]) <justification>
 *
 * A suppression with no justification text, or naming an unknown
 * rule, is itself a finding (lint-bad-suppression); a suppression
 * that matches no finding is also a finding (lint-unused-suppression)
 * so stale allowances cannot accumulate.
 */

#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace eval::lint {

/** One finding, anchored to a file:line. */
struct Diagnostic
{
    std::string file;    ///< path relative to Options::root
    int line = 1;        ///< 1-based
    std::string rule;    ///< rule id, e.g. "det-entropy"
    std::string message;

    bool operator==(const Diagnostic &) const = default;
};

/** Catalog entry: rule id plus a one-line summary (--list-rules). */
struct RuleInfo
{
    std::string id;
    std::string summary;
};

/** All enforceable rules, in stable display order. */
const std::vector<RuleInfo> &ruleCatalog();

/** True iff @p id names a rule in the catalog (including the two
 *  lint-* audit rules, which are reported but never suppressible). */
bool isKnownRule(const std::string &id);

struct Options
{
    /** Tree root; rule path-scoping is computed relative to this. */
    std::filesystem::path root;

    /** Subtrees or files (relative to root) to scan.  Empty means the
     *  default set: src, bench, tests, examples, tools. */
    std::vector<std::string> paths;

    /** Relative paths containing any of these substrings are skipped
     *  (e.g. "tests/lint/fixtures" when linting the real tree). */
    std::vector<std::string> excludes;
};

/**
 * Lint every .cc/.cpp/.hh/.h file under the requested paths.  Returns
 * findings sorted by (file, line, rule) so output is independent of
 * directory-iteration order.  On I/O failure (unreadable root or
 * path), returns empty and sets *error if non-null.
 */
std::vector<Diagnostic> runLint(const Options &opts,
                                std::string *error = nullptr);

/**
 * Lint a single in-memory source.  @p relPath is the path the file
 * would have relative to the tree root; it drives rule scoping.
 * Exposed so tests can exercise rules without touching the disk.
 */
std::vector<Diagnostic> lintSource(const std::string &relPath,
                                   const std::string &content);

/** Process exit code for a finding set: 0 clean, 1 findings. */
int exitCodeFor(const std::vector<Diagnostic> &diags);

/** "file:line: [rule] message" */
std::string formatDiagnostic(const Diagnostic &d);

/** JSON array of findings (for the CI report artifact). */
std::string toJson(const std::vector<Diagnostic> &diags);

} // namespace eval::lint
