/**
 * @file
 * eval-lint: repo-specific static analysis for determinism, numerics,
 * and hygiene invariants.
 *
 * The simulator promises bit-identical Monte Carlo results at any
 * thread count, exact-bit PE cache hits, and goldens pinned to the
 * paper's numbers.  Those invariants are easy to break silently: one
 * stray rand() call, one iteration over an unordered container feeding
 * a float accumulator, one shared Rng drawn from inside a parallelFor.
 * The golden tier catches such breaks end-to-end; this pass catches
 * them at the line that introduces them.
 *
 * The analyzer is token-based (comments and string literals are
 * stripped before matching), walks a tree rooted at Options::root, and
 * scopes each rule by the file's path relative to that root — e.g.
 * hyg-iostream only applies under src/, and det-entropy exempts
 * src/util/random (the entropy abstraction itself).  Findings can be
 * suppressed inline with an audited comment:
 *
 *     // eval-lint: allow(<rule>[,<rule>...]) <justification>
 *
 * A suppression with no justification text, or naming an unknown
 * rule, is itself a finding (lint-bad-suppression); a suppression
 * that matches no finding is also a finding (lint-unused-suppression)
 * so stale allowances cannot accumulate.
 */

#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace eval::lint {

/** One finding, anchored to a file:line. */
struct Diagnostic
{
    std::string file;    ///< path relative to Options::root
    int line = 1;        ///< 1-based
    std::string rule;    ///< rule id, e.g. "det-entropy"
    std::string message;

    bool operator==(const Diagnostic &) const = default;
};

/** Catalog entry: rule id plus a one-line summary (--list-rules). */
struct RuleInfo
{
    std::string id;
    std::string summary;
};

/** All enforceable rules, in stable display order. */
const std::vector<RuleInfo> &ruleCatalog();

/** True iff @p id names a rule in the catalog (including the two
 *  lint-* audit rules, which are reported but never suppressible). */
bool isKnownRule(const std::string &id);

struct Options
{
    /** Tree root; rule path-scoping is computed relative to this.
     *  The root itself is canonicalized (so `--root tree/`,
     *  `--root tree` and a symlink to the tree behave identically),
     *  but files below it keep their lexical relative paths — a
     *  symlinked subdirectory is scanned under the path it is
     *  reachable by, not its target, so rule scoping never changes
     *  with the filesystem layout behind the link. */
    std::filesystem::path root;

    /** Subtrees or files (relative to root) to scan.  Empty means the
     *  default set: src, bench, tests, examples, tools.  The semantic
     *  passes always index the full default set for context; findings
     *  are only *emitted* for the requested paths, so a changed-files
     *  run (scripts/precommit.sh) sees project-wide facts without
     *  reporting out-of-scope files. */
    std::vector<std::string> paths;

    /** Relative paths containing any of these substrings are skipped
     *  (e.g. "tests/lint/fixtures" when linting the real tree). */
    std::vector<std::string> excludes;

    /** Worker threads for the file scan (phase 1).  0 = auto
     *  (EVAL_THREADS or hardware concurrency).  Findings are
     *  independent of the thread count. */
    unsigned jobs = 0;

    /** Layering manifest.  Empty = auto-discover
     *  <root>/tools/lint/layers.toml, then <root>/layers.toml; when
     *  neither exists the layering and exception-contract passes are
     *  skipped.  A relative path here resolves against root. */
    std::filesystem::path layersFile;
};

/**
 * Lint every .cc/.cpp/.hh/.h file under the requested paths: the
 * token-level rules per file, then the project-wide semantic passes
 * (layering, include cycles, exception contracts, atomics audit,
 * determinism data-flow) over the whole indexed tree.  Returns
 * findings sorted by (file, line, rule) so output is independent of
 * directory-iteration order and of Options::jobs.  On I/O failure
 * (unreadable root, path, or file), returns empty and sets *error if
 * non-null.
 */
std::vector<Diagnostic> runLint(const Options &opts,
                                std::string *error = nullptr);

/**
 * Lint a single in-memory source: the token-level rules plus the
 * semantic passes that make sense for one file in isolation (atomics
 * audit, determinism data-flow).  @p relPath is the path the file
 * would have relative to the tree root; it drives rule scoping.
 * Exposed so tests can exercise rules without touching the disk.
 */
std::vector<Diagnostic> lintSource(const std::string &relPath,
                                   const std::string &content);

/** Process exit code for a finding set: 0 clean, 1 findings. */
int exitCodeFor(const std::vector<Diagnostic> &diags);

/** "file:line: [rule] message" */
std::string formatDiagnostic(const Diagnostic &d);

/** JSON array of findings (for the CI report artifact). */
std::string toJson(const std::vector<Diagnostic> &diags);

} // namespace eval::lint
