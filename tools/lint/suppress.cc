#include "suppress.hh"

#include <algorithm>
#include <regex>
#include <sstream>

#include "lint.hh"

namespace eval::lint {

bool
inlineUnsuppressible(const std::string &rule)
{
    return startsWith(rule, "lint-") || startsWith(rule, "lay-");
}

namespace {

/** Rules whose finding is anchored to line 1 but describes the whole
 *  file; a suppression anywhere in the file covers them. */
bool
fileScoped(const std::string &rule)
{
    return rule == "hyg-pragma-once";
}

/** The line a marker/suppression comment covers: its own line for a
 *  trailing comment, else the next code line (bounded so a
 *  suppression cannot drift far from its target). */
int
coveredLineFor(const Scan &scan, int line)
{
    if (!lineIsBlankCode(scan, line))
        return line;
    const int limit =
        std::min(line + 10, static_cast<int>(scan.lineStart.size()));
    for (int l = line + 1; l <= limit; ++l)
        if (!lineIsBlankCode(scan, l))
            return l;
    return line;
}

} // namespace

std::vector<Suppression>
parseSuppressions(const Scan &scan, const std::string &relPath,
                  std::vector<Diagnostic> &diags, FileMarkers *markers)
{
    static const std::regex allowRe(
        R"(eval-lint:\s*allow\(([^)]*)\)(.*))");
    // File-scope markers share the audited form: marker word, then a
    // justification.  Built from pieces so this file's own comments
    // cannot accidentally contain an active marker.
    static const std::regex markerRe(
        R"(eval-lint:\s*(hot-path|counters-only)\b(.*))");
    std::vector<Suppression> supps;
    for (const auto &[line, text] : scan.lineComments) {
        if (text.find("eval-lint") == std::string::npos)
            continue;
        std::smatch m;
        if (std::regex_search(text, m, markerRe)) {
            const std::string which = m[1].str();
            std::string why = trimmed(m[2].str());
            if (why.size() >= 2 &&
                why.compare(why.size() - 2, 2, "*/") == 0)
                why = trimmed(why.substr(0, why.size() - 2));
            if (why.empty())
                diags.push_back({relPath, line, "lint-bad-suppression",
                                 "file marker '" + which + "' has no "
                                 "justification text; every marker must "
                                 "say why it applies"});
            if (markers) {
                if (which == "hot-path")
                    markers->hotPath = true;
                else {
                    markers->countersOnly = true;
                    markers->countersOnlyLine = line;
                }
            }
            continue;
        }
        if (!std::regex_search(text, m, allowRe)) {
            diags.push_back({relPath, line, "lint-bad-suppression",
                             "malformed eval-lint comment; expected "
                             "'eval-lint: allow(<rule>) <justification>'"});
            continue;
        }
        Suppression s;
        s.line = line;
        s.coveredLine = coveredLineFor(scan, line);
        std::stringstream ruleList(m[1].str());
        std::string rule;
        bool ok = true;
        while (std::getline(ruleList, rule, ',')) {
            rule = trimmed(rule);
            if (rule.empty())
                continue;
            if (!isKnownRule(rule) || inlineUnsuppressible(rule)) {
                diags.push_back({relPath, line, "lint-bad-suppression",
                                 "suppression names unknown or "
                                 "non-suppressible rule '" + rule + "'"});
                ok = false;
                continue;
            }
            s.rules.push_back(rule);
        }
        if (s.rules.empty() && ok) {
            diags.push_back({relPath, line, "lint-bad-suppression",
                             "suppression lists no rules"});
            ok = false;
        }
        std::string just = trimmed(m[2].str());
        if (just.size() >= 2 && just.compare(just.size() - 2, 2, "*/") == 0)
            just = trimmed(just.substr(0, just.size() - 2));
        if (just.empty()) {
            diags.push_back({relPath, line, "lint-bad-suppression",
                             "suppression has no justification text; "
                             "every allowance must say why it is safe"});
            ok = false;
        }
        if (ok)
            supps.push_back(std::move(s));
    }
    return supps;
}

void
applySuppressions(std::vector<Diagnostic> &diags,
                  std::vector<Suppression> &supps,
                  const std::string &relPath)
{
    std::vector<Diagnostic> kept;
    for (auto &d : diags) {
        if (inlineUnsuppressible(d.rule)) {
            kept.push_back(std::move(d));
            continue;
        }
        bool suppressed = false;
        for (auto &s : supps) {
            const bool ruleMatch =
                std::find(s.rules.begin(), s.rules.end(), d.rule) !=
                s.rules.end();
            if (!ruleMatch)
                continue;
            const bool covers = fileScoped(d.rule) || s.coveredLine == d.line;
            if (covers) {
                s.used = true;
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            kept.push_back(std::move(d));
    }
    for (const auto &s : supps)
        if (!s.used)
            kept.push_back({relPath, s.line, "lint-unused-suppression",
                            "suppression matched no finding; remove it "
                            "so stale allowances cannot accumulate"});
    diags = std::move(kept);
}

} // namespace eval::lint
