#include "passes.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "lint.hh"

namespace eval::lint {

namespace {

/** src-relative spelling used by layers.toml ("src/core/eval.hh" ->
 *  "core/eval.hh"). */
std::string
srcRel(const std::string &relPath)
{
    return startsWith(relPath, "src/") ? relPath.substr(4) : relPath;
}

std::string
lastComponent(const std::string &type)
{
    const std::size_t pos = type.rfind("::");
    return pos == std::string::npos ? type : type.substr(pos + 2);
}

// ---------------------------------------------------------------------------
// Layering contract
// ---------------------------------------------------------------------------

void
passLayering(const ProjectIndex &index, const LayersManifest &manifest,
             const PassOptions &opts, std::vector<Diagnostic> &diags)
{
    if (!manifest.loaded)
        return;

    // (module, to) -> used; exception index -> used.
    std::set<std::pair<std::string, std::string>> usedEdges;
    std::vector<bool> usedExceptions(manifest.exceptions.size(), false);
    std::set<std::string> modulesSeen;

    for (const auto &file : index.files) {
        if (file.module.empty())
            continue;
        modulesSeen.insert(file.module);
        const auto modIt = manifest.modules.find(file.module);
        if (modIt == manifest.modules.end()) {
            diags.push_back(
                {file.relPath, 1, "lay-module",
                 "module '" + file.module + "' is not declared in " +
                     (opts.manifestRel.empty() ? "layers.toml"
                                               : opts.manifestRel) +
                     "; every src/ module needs a [modules." +
                     file.module + "] table"});
            continue;
        }
        const ModuleContract &contract = modIt->second;
        for (const auto &inc : file.includes) {
            if (inc.angled)
                continue;
            const std::size_t slash = inc.path.find('/');
            if (slash == std::string::npos)
                continue; // same-directory include
            const std::string target = inc.path.substr(0, slash);
            if (!manifest.modules.count(target))
                continue; // not a src/ module (external quoted include)
            if (target == file.module)
                continue;
            const bool declared = std::any_of(
                contract.uses.begin(), contract.uses.end(),
                [&](const LayerEdge &e) { return e.to == target; });
            if (declared) {
                usedEdges.insert({file.module, target});
                continue;
            }
            bool excepted = false;
            for (std::size_t i = 0; i < manifest.exceptions.size(); ++i) {
                const EdgeException &e = manifest.exceptions[i];
                if (e.file == srcRel(file.relPath) && e.to == target) {
                    usedExceptions[i] = true;
                    excepted = true;
                    break;
                }
            }
            if (excepted)
                continue;
            diags.push_back(
                {file.relPath, inc.line, "lay-edge",
                 "include of '" + inc.path + "' crosses the module "
                 "boundary " + file.module + " -> " + target +
                 " without a declared edge; add `\"" + target +
                 "\"` to [modules." + file.module + "].uses in " +
                 (opts.manifestRel.empty() ? "layers.toml"
                                           : opts.manifestRel) +
                 " (or a per-file exception) if the dependency is "
                 "intended"});
        }
    }

    if (!opts.fullTree)
        return;
    const std::string anchor =
        opts.manifestRel.empty() ? "layers.toml" : opts.manifestRel;
    for (const auto &[name, mod] : manifest.modules) {
        if (!modulesSeen.count(name))
            diags.push_back({anchor, mod.line, "lay-unused-edge",
                             "module '" + name + "' is declared but no "
                             "src/" + name + "/ files were indexed; "
                             "remove the stale table"});
        for (const auto &edge : mod.uses)
            if (!usedEdges.count({name, edge.to}))
                diags.push_back(
                    {anchor, edge.line, "lay-unused-edge",
                     "declared edge " + name + " -> " + edge.to +
                         " is exercised by no include; remove it so "
                         "the frozen boundary stays exact"});
    }
    for (std::size_t i = 0; i < manifest.exceptions.size(); ++i)
        if (!usedExceptions[i])
            diags.push_back(
                {anchor, manifest.exceptions[i].line, "lay-unused-edge",
                 "exception edge " + manifest.exceptions[i].file + " -> " +
                     manifest.exceptions[i].to +
                     " matched no include; remove it"});
}

// ---------------------------------------------------------------------------
// Include cycles (file level)
// ---------------------------------------------------------------------------

std::string
dirOf(const std::string &relPath)
{
    const std::size_t slash = relPath.find_last_of('/');
    return slash == std::string::npos ? "" : relPath.substr(0, slash);
}

void
passIncludeCycles(const ProjectIndex &index, std::vector<Diagnostic> &diags)
{
    std::map<std::string, std::size_t> byPath;
    for (std::size_t i = 0; i < index.files.size(); ++i)
        byPath[index.files[i].relPath] = i;

    // adjacency: file -> (target file, include line)
    std::vector<std::vector<std::pair<std::size_t, int>>> edges(
        index.files.size());
    for (std::size_t i = 0; i < index.files.size(); ++i) {
        const FileIndex &file = index.files[i];
        const std::string dir = dirOf(file.relPath);
        for (const auto &inc : file.includes) {
            if (inc.angled)
                continue;
            std::size_t target = index.files.size();
            for (const std::string &cand :
                 {dir.empty() ? inc.path : dir + "/" + inc.path,
                  "src/" + inc.path, inc.path}) {
                const auto it = byPath.find(cand);
                if (it != byPath.end()) {
                    target = it->second;
                    break;
                }
            }
            if (target < index.files.size())
                edges[i].push_back({target, inc.line});
        }
    }

    enum class Color { White, Grey, Black };
    std::vector<Color> color(index.files.size(), Color::White);
    std::vector<std::size_t> chain;
    std::set<std::string> reported;

    std::function<void(std::size_t)> visit = [&](std::size_t node) {
        color[node] = Color::Grey;
        chain.push_back(node);
        for (const auto &[target, line] : edges[node]) {
            if (color[target] == Color::Grey) {
                // Reconstruct the cycle; canonicalize (rotate so the
                // lexicographically smallest path leads) to report
                // each cycle exactly once.
                auto at = std::find(chain.begin(), chain.end(), target);
                std::vector<std::string> cycle;
                for (; at != chain.end(); ++at)
                    cycle.push_back(index.files[*at].relPath);
                const auto minIt =
                    std::min_element(cycle.begin(), cycle.end());
                std::rotate(cycle.begin(), minIt, cycle.end());
                std::string key;
                for (const auto &p : cycle)
                    key += p + " -> ";
                key += cycle.front();
                if (reported.insert(key).second)
                    diags.push_back(
                        {index.files[node].relPath, line, "lay-cycle",
                         "include cycle: " + key + "; break the cycle "
                         "with a forward declaration or by moving the "
                         "shared piece down a layer"});
            } else if (color[target] == Color::White) {
                visit(target);
            }
        }
        chain.pop_back();
        color[node] = Color::Black;
    };
    for (std::size_t i = 0; i < index.files.size(); ++i)
        if (color[i] == Color::White)
            visit(i);
}

// ---------------------------------------------------------------------------
// Exception contracts
// ---------------------------------------------------------------------------

void
passExceptionContracts(const ProjectIndex &index,
                       const LayersManifest &manifest,
                       std::vector<Diagnostic> &diags)
{
    if (!manifest.loaded)
        return;
    for (const auto &file : index.files) {
        if (file.module.empty())
            continue;
        const auto modIt = manifest.modules.find(file.module);
        if (modIt == manifest.modules.end())
            continue; // lay-module already fired
        const ModuleContract &contract = modIt->second;
        for (const auto &site : file.throwSites) {
            if (site.rethrow || site.type.empty())
                continue;
            // `throw err;` re-raises an object constructed (and
            // checked) elsewhere; only construction sites
            // (`throw Type(...)` / `throw Type{...}`) are contract
            // sites.  The indexer records the spelling either way, so
            // distinguish by the first character: type names are
            // capitalized or std::-qualified in this codebase.
            const std::string type = lastComponent(site.type);
            const bool constructed =
                !type.empty() &&
                (std::isupper(static_cast<unsigned char>(type[0])) ||
                 site.type.find("::") != std::string::npos);
            if (!constructed)
                continue;
            const bool allowed =
                std::find(contract.throws_.begin(), contract.throws_.end(),
                          type) != contract.throws_.end() ||
                std::find(contract.throws_.begin(), contract.throws_.end(),
                          site.type) != contract.throws_.end();
            if (allowed)
                continue;
            diags.push_back(
                {file.relPath, site.line, "exc-contract",
                 "module '" + file.module + "' throws '" + site.type +
                     "' but declares throws = [" +
                     [&] {
                         std::string list;
                         for (const auto &t : contract.throws_)
                             list += (list.empty() ? "" : ", ") + t;
                         return list;
                     }() +
                     "] in layers.toml; wrap the error in a declared "
                     "type or extend the module contract"});
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics audit
// ---------------------------------------------------------------------------

void
passAtomicsAudit(const ProjectIndex &index, std::vector<Diagnostic> &diags)
{
    for (const auto &file : index.files) {
        if (!startsWith(file.relPath, "src/"))
            continue;
        if (file.markers.countersOnly)
            continue;
        for (const auto &site : file.atomics) {
            if (site.order != "relaxed")
                continue;
            diags.push_back(
                {file.relPath, site.line, "atomics-relaxed",
                 "memory_order_relaxed provides no ordering; every "
                 "relaxed access needs an audited "
                 "'eval-lint: allow(atomics-relaxed) <why>' stating "
                 "why reordering is safe, or the file-level "
                 "'eval-lint: counters-only' marker if it only "
                 "carries monotone counters off the model path"});
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism data-flow over parallel regions
// ---------------------------------------------------------------------------

/** Captured-by-reference names in a lambda capture list. */
struct Captures
{
    bool defaultRef = false;
    std::set<std::string> byRef;
};

Captures
parseCaptures(const std::string &text)
{
    Captures out;
    std::string entry;
    int depth = 0;
    auto flush = [&]() {
        const std::string e = trimmed(entry);
        entry.clear();
        if (e.empty())
            return;
        if (e == "&") {
            out.defaultRef = true;
            return;
        }
        if (e[0] != '&')
            return; // by-value / this / *this: cannot leak writes out
        std::string name;
        for (std::size_t i = 1; i < e.size() && identChar(e[i]); ++i)
            name.push_back(e[i]);
        if (!name.empty())
            out.byRef.insert(name);
    };
    for (char c : text) {
        if (c == '(' || c == '[' || c == '{' || c == '<')
            ++depth;
        else if (c == ')' || c == ']' || c == '}' || c == '>')
            --depth;
        if (c == ',' && depth == 0)
            flush();
        else
            entry.push_back(c);
    }
    flush();
    return out;
}

/** Names declared inside the body (locals): best-effort — an
 *  identifier preceded by a type-ish token and followed by an
 *  initializer or call. */
std::set<std::string>
bodyLocals(const std::string &body, const std::vector<std::string> &params)
{
    std::set<std::string> locals(params.begin(), params.end());
    static const std::regex declRe(
        R"((?:^|[;{}(])\s*(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:<[^<>;{}]*>)?)\s*[&*]?\s+([A-Za-z_]\w*)\s*(?:=|\(|\{|;))");
    for (auto it = std::sregex_iterator(body.begin(), body.end(), declRe);
         it != std::sregex_iterator(); ++it)
        locals.insert((*it)[1].str());
    return locals;
}

void
passDeterminismFlow(const ProjectIndex &index,
                    std::vector<Diagnostic> &diags)
{
    // Order-dependent container mutations: growing, shrinking, or
    // re-arranging a shared object from inside a parallel body makes
    // the result depend on the schedule.  Slot-indexed writes
    // (out[i] = ...) never match; neither do CampaignAccumulator-
    // style merge folds (merge happens serially after the fan-out) or
    // ProgressTracker ticks (relaxed counters off the results path).
    static const char *mutators[] = {
        "push_back", "emplace_back", "push_front", "emplace_front",
        "emplace",   "insert",       "erase",      "clear",
        "resize",    "assign",       "append",     "push",
        "pop",       "pop_back",     "pop_front",
    };
    for (const auto &file : index.files) {
        if (!startsWith(file.relPath, "src/") &&
            !startsWith(file.relPath, "bench/"))
            continue;
        for (const auto &region : file.regions) {
            const Captures caps = parseCaptures(region.captures);
            if (!caps.defaultRef && caps.byRef.empty())
                continue;
            const std::set<std::string> locals =
                bodyLocals(region.body, region.params);
            auto flag = [&](std::size_t at, const std::string &name,
                            const std::string &what) {
                diags.push_back(
                    {file.relPath,
                     file.lineAt(region.bodyOffset + at),
                     "det-par-capture",
                     "'" + name + "' is captured by reference and " +
                         what + " inside a " + region.entry +
                         " body; the result depends on the thread "
                         "schedule.  Write to a per-index slot "
                         "(out[i] = ...), fold through a merge type "
                         "(CampaignAccumulator) after the fan-out, or "
                         "justify with an audited suppression"});
            };
            for (const char *m : mutators) {
                for (std::size_t pos :
                     findTokens(region.body, m, true)) {
                    // Receiver: `name.m(` or `name->m(` — but what
                    // decides shared-vs-local is the ROOT of the
                    // member chain (`runs.base.resize(...)` mutates
                    // `runs`), so walk the whole `a.b[i]->c` chain
                    // back to its leading identifier.
                    std::size_t p = pos;
                    if (p >= 1 && region.body[p - 1] == '.')
                        p -= 1;
                    else if (p >= 2 && region.body[p - 1] == '>' &&
                             region.body[p - 2] == '-')
                        p -= 2;
                    else
                        continue;
                    std::string recv;
                    std::size_t b = p;
                    while (true) {
                        const std::size_t e = b;
                        while (b > 0 && identChar(region.body[b - 1]))
                            --b;
                        if (b == e) {
                            // Chain roots in a call result (`f().v`):
                            // not a capture name; stay silent.
                            recv.clear();
                            break;
                        }
                        recv = region.body.substr(b, e - b);
                        if (b >= 1 && region.body[b - 1] == '.') {
                            --b;
                        } else if (b >= 2 && region.body[b - 1] == '>' &&
                                   region.body[b - 2] == '-') {
                            b -= 2;
                        } else if (b >= 1 && region.body[b - 1] == ']') {
                            int depth = 1;
                            std::size_t i = b - 1;
                            while (i > 0 && depth != 0) {
                                --i;
                                if (region.body[i] == ']')
                                    ++depth;
                                else if (region.body[i] == '[')
                                    --depth;
                            }
                            if (depth != 0) {
                                recv.clear();
                                break;
                            }
                            b = i;
                        } else {
                            break;
                        }
                    }
                    if (recv.empty() || recv == "this")
                        continue;
                    const bool shared =
                        caps.byRef.count(recv) ||
                        (caps.defaultRef && !locals.count(recv));
                    if (shared)
                        flag(pos, recv,
                             "mutated ('" + std::string(m) + "')");
                }
            }
            // Compound accumulation onto a shared scalar:
            // `name += ...` / `name -= ...` / `name *= ...`.
            static const std::regex accumRe(
                R"(([A-Za-z_]\w*)\s*[+\-*]=)");
            for (auto it = std::sregex_iterator(region.body.begin(),
                                                region.body.end(),
                                                accumRe);
                 it != std::sregex_iterator(); ++it) {
                const std::string recv = (*it)[1].str();
                const bool shared =
                    caps.byRef.count(recv) ||
                    (caps.defaultRef && !locals.count(recv));
                if (shared)
                    flag(static_cast<std::size_t>(it->position()), recv,
                         "accumulated into ('" + (*it)[0].str() + "')");
            }
        }
    }
}

} // namespace

std::vector<Diagnostic>
runProjectPasses(const ProjectIndex &index, const LayersManifest &manifest,
                 const std::vector<std::string> &manifestErrors,
                 const PassOptions &opts)
{
    std::vector<Diagnostic> diags;

    const std::string anchor =
        opts.manifestRel.empty() ? "layers.toml" : opts.manifestRel;
    for (const auto &err : manifestErrors) {
        // Parser errors are "line N: message"; lift the line number
        // into the diagnostic so editors can jump to it.
        int line = 1;
        std::string message = err;
        static const std::regex lineRe(R"(^line (\d+): (.*)$)");
        std::smatch m;
        if (std::regex_match(err, m, lineRe)) {
            line = std::stoi(m[1].str());
            message = m[2].str();
        }
        diags.push_back({anchor, line, "lay-manifest",
                         "layers manifest: " + message});
    }

    passLayering(index, manifest, opts, diags);
    passIncludeCycles(index, diags);
    passExceptionContracts(index, manifest, diags);
    passAtomicsAudit(index, diags);
    passDeterminismFlow(index, diags);
    return diags;
}

} // namespace eval::lint
