#include "sarif.hh"

#include <sstream>

#include "baseline.hh"

namespace eval::lint {

namespace {

std::string
jsonStr(const std::string &s)
{
    std::ostringstream out;
    out << '"';
    for (char c : s) {
        switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        case '\r': out << "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
    return out.str();
}

} // namespace

std::string
toSarif(const std::vector<Diagnostic> &diags,
        const std::set<std::string> *baselinedKeys,
        const std::string &rootUri)
{
    const auto &rules = ruleCatalog();
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"eval-lint\",\n"
        << "          \"informationUri\": "
           "\"https://example.invalid/eval/tools/lint\",\n"
        << "          \"rules\": [\n";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\n"
            << "              \"id\": " << jsonStr(rules[i].id) << ",\n"
            << "              \"shortDescription\": { \"text\": "
            << jsonStr(rules[i].summary) << " }\n"
            << "            }" << (i + 1 < rules.size() ? "," : "")
            << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n";
    if (!rootUri.empty()) {
        out << "      \"originalUriBaseIds\": {\n"
            << "        \"SRCROOT\": { \"uri\": " << jsonStr(rootUri)
            << " }\n"
            << "      },\n";
    }
    out << "      \"results\": [\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        std::size_t ruleIndex = 0;
        for (std::size_t r = 0; r < rules.size(); ++r)
            if (rules[r].id == d.rule) {
                ruleIndex = r;
                break;
            }
        out << "        {\n"
            << "          \"ruleId\": " << jsonStr(d.rule) << ",\n"
            << "          \"ruleIndex\": " << ruleIndex << ",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": { \"text\": " << jsonStr(d.message)
            << " },\n";
        if (baselinedKeys) {
            const bool old = baselinedKeys->count(baselineKey(d)) > 0;
            out << "          \"baselineState\": "
                << (old ? "\"unchanged\"" : "\"new\"") << ",\n";
        }
        out << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": {\n"
            << "                  \"uri\": " << jsonStr(d.file);
        if (!rootUri.empty())
            out << ",\n                  \"uriBaseId\": \"SRCROOT\"";
        out << "\n                },\n"
            << "                \"region\": { \"startLine\": "
            << (d.line > 0 ? d.line : 1) << " }\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }" << (i + 1 < diags.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

} // namespace eval::lint
