#include "layers.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <sstream>

#include "source_scan.hh"

namespace eval::lint {

namespace {

/** Strip a trailing `# comment` (outside quotes) and whitespace. */
std::string
stripComment(const std::string &line)
{
    bool inStr = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"')
            inStr = !inStr;
        else if (line[i] == '#' && !inStr)
            return trimmed(line.substr(0, i));
    }
    return trimmed(line);
}

/** Parse the double-quoted strings in `text` (one array line). */
std::vector<std::string>
quotedStrings(const std::string &text, bool &malformed)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        if (c == '"') {
            const std::size_t close = text.find('"', i + 1);
            if (close == std::string::npos) {
                malformed = true;
                return out;
            }
            out.push_back(text.substr(i + 1, close - i - 1));
            i = close + 1;
        } else if (c == ',' || c == ' ' || c == '\t') {
            ++i;
        } else {
            malformed = true;
            return out;
        }
    }
    return out;
}

/** "file -> module : why" exception entry. */
bool
parseExceptionEdge(const std::string &entry, EdgeException &out)
{
    const std::size_t arrow = entry.find("->");
    if (arrow == std::string::npos)
        return false;
    const std::size_t colon = entry.find(':', arrow);
    out.file = trimmed(entry.substr(0, arrow));
    if (colon == std::string::npos) {
        out.to = trimmed(entry.substr(arrow + 2));
        out.why.clear();
    } else {
        out.to = trimmed(entry.substr(arrow + 2, colon - arrow - 2));
        out.why = trimmed(entry.substr(colon + 1));
    }
    return !out.file.empty() && !out.to.empty() &&
           out.to.find(' ') == std::string::npos;
}

} // namespace

void
checkLayerDag(const LayersManifest &manifest,
              std::vector<std::string> &errors)
{
    // Iterative DFS with three colors; on a back edge, reconstruct
    // the module chain for the error message.
    enum class Color { White, Grey, Black };
    std::map<std::string, Color> color;
    for (const auto &[name, mod] : manifest.modules)
        color[name] = Color::White;

    std::function<bool(const std::string &, std::vector<std::string> &)>
        visit = [&](const std::string &name,
                    std::vector<std::string> &chain) -> bool {
        color[name] = Color::Grey;
        chain.push_back(name);
        const auto it = manifest.modules.find(name);
        if (it != manifest.modules.end()) {
            for (const auto &edge : it->second.uses) {
                const auto cit = color.find(edge.to);
                if (cit == color.end())
                    continue; // unknown target: reported separately
                if (cit->second == Color::Grey) {
                    std::string cycle;
                    auto at = std::find(chain.begin(), chain.end(),
                                        edge.to);
                    for (; at != chain.end(); ++at)
                        cycle += *at + " -> ";
                    cycle += edge.to;
                    errors.push_back(
                        "line " + std::to_string(edge.line) +
                        ": `uses` edges form a cycle (" + cycle +
                        "); the layer graph must be a DAG");
                    return true;
                }
                if (cit->second == Color::White && visit(edge.to, chain))
                    return true;
            }
        }
        chain.pop_back();
        color[name] = Color::Black;
        return false;
    };

    for (const auto &[name, mod] : manifest.modules) {
        if (color[name] != Color::White)
            continue;
        std::vector<std::string> chain;
        if (visit(name, chain))
            return; // one cycle report is actionable enough
    }
}

LayersManifest
parseLayers(const std::string &text, std::vector<std::string> &errors)
{
    LayersManifest manifest;
    manifest.loaded = true;

    enum class Section { None, Module, Exceptions };
    Section section = Section::None;
    ModuleContract *current = nullptr;

    // Array values may span lines: `key = [` ... `]`.
    std::string pendingKey;
    std::string pendingValue;
    int pendingLine = 0;

    std::istringstream lines(text);
    std::string raw;
    int lineNo = 0;

    auto commitArray = [&](const std::string &key,
                           const std::string &value, int atLine) {
        bool malformed = false;
        const std::string inner = trimmed(value);
        std::vector<std::string> items = quotedStrings(inner, malformed);
        if (malformed) {
            errors.push_back("line " + std::to_string(atLine) +
                             ": malformed string array for '" + key + "'");
            return;
        }
        if (section == Section::Module && current) {
            if (key == "uses") {
                for (const auto &item : items)
                    current->uses.push_back({item, atLine});
            } else if (key == "throws") {
                current->throwsDeclared = true;
                for (const auto &item : items)
                    current->throws_.push_back(item);
            } else {
                errors.push_back("line " + std::to_string(atLine) +
                                 ": unknown module key '" + key + "'");
            }
        } else if (section == Section::Exceptions) {
            if (key != "edges") {
                errors.push_back("line " + std::to_string(atLine) +
                                 ": unknown exceptions key '" + key + "'");
                return;
            }
            for (const auto &item : items) {
                EdgeException e;
                if (!parseExceptionEdge(item, e)) {
                    errors.push_back(
                        "line " + std::to_string(atLine) +
                        ": malformed exception edge '" + item +
                        "' (want \"file -> module : why\")");
                    continue;
                }
                e.line = atLine;
                manifest.exceptions.push_back(std::move(e));
            }
        } else {
            errors.push_back("line " + std::to_string(atLine) +
                             ": key '" + key + "' outside any table");
        }
    };

    while (std::getline(lines, raw)) {
        ++lineNo;
        const std::string line = stripComment(raw);
        if (line.empty())
            continue;

        if (!pendingKey.empty()) {
            pendingValue += ' ';
            pendingValue += line;
            if (line.find(']') != std::string::npos) {
                std::string inner = pendingValue;
                inner.erase(std::remove(inner.begin(), inner.end(), '['),
                            inner.end());
                inner.erase(std::remove(inner.begin(), inner.end(), ']'),
                            inner.end());
                commitArray(pendingKey, inner, pendingLine);
                pendingKey.clear();
                pendingValue.clear();
            }
            continue;
        }

        if (line.front() == '[') {
            if (line == "[exceptions]") {
                section = Section::Exceptions;
                current = nullptr;
                continue;
            }
            static const std::string prefix = "[modules.";
            if (startsWith(line, prefix.c_str()) && line.back() == ']') {
                const std::string name =
                    line.substr(prefix.size(),
                                line.size() - prefix.size() - 1);
                const bool valid =
                    !name.empty() &&
                    std::all_of(name.begin(), name.end(), [](char c) {
                        return identChar(c);
                    });
                if (!valid) {
                    errors.push_back("line " + std::to_string(lineNo) +
                                     ": bad module name in '" + line + "'");
                    section = Section::None;
                    current = nullptr;
                    continue;
                }
                auto [it, fresh] = manifest.modules.try_emplace(name);
                if (!fresh)
                    errors.push_back("line " + std::to_string(lineNo) +
                                     ": duplicate table for module '" +
                                     name + "'");
                it->second.name = name;
                it->second.line = lineNo;
                section = Section::Module;
                current = &it->second;
                continue;
            }
            errors.push_back("line " + std::to_string(lineNo) +
                             ": unknown table '" + line + "'");
            section = Section::None;
            current = nullptr;
            continue;
        }

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            errors.push_back("line " + std::to_string(lineNo) +
                             ": expected 'key = [...]' but got '" + line +
                             "'");
            continue;
        }
        const std::string key = trimmed(line.substr(0, eq));
        const std::string value = trimmed(line.substr(eq + 1));
        if (value.empty() || value.front() != '[') {
            errors.push_back("line " + std::to_string(lineNo) +
                             ": value for '" + key +
                             "' must be a string array");
            continue;
        }
        if (value.find(']') != std::string::npos) {
            std::string inner = value;
            inner.erase(std::remove(inner.begin(), inner.end(), '['),
                        inner.end());
            inner.erase(std::remove(inner.begin(), inner.end(), ']'),
                        inner.end());
            commitArray(key, inner, lineNo);
        } else {
            pendingKey = key;
            pendingValue = value;
            pendingLine = lineNo;
        }
    }
    if (!pendingKey.empty())
        errors.push_back("line " + std::to_string(pendingLine) +
                         ": unterminated array for '" + pendingKey + "'");

    // Edges must point at declared modules; exceptions too.
    for (const auto &[name, mod] : manifest.modules)
        for (const auto &edge : mod.uses)
            if (!manifest.modules.count(edge.to))
                errors.push_back("line " + std::to_string(edge.line) +
                                 ": module '" + name +
                                 "' uses undeclared module '" + edge.to +
                                 "'");
    for (const auto &e : manifest.exceptions) {
        if (!manifest.modules.count(e.to))
            errors.push_back("line " + std::to_string(e.line) +
                             ": exception edge targets undeclared "
                             "module '" + e.to + "'");
        if (e.why.empty())
            errors.push_back("line " + std::to_string(e.line) +
                             ": exception edge '" + e.file + " -> " +
                             e.to + "' has no justification after ':'");
    }

    checkLayerDag(manifest, errors);
    return manifest;
}

} // namespace eval::lint
