#include "source_scan.hh"

#include <algorithm>
#include <cctype>

namespace eval::lint {

Scan
scanSource(const std::string &in)
{
    Scan scan;
    scan.code.assign(in.size(), ' ');
    scan.lineStart.push_back(0);

    enum class St { Code, LineComment, BlockComment, Str, Chr, RawStr };
    St st = St::Code;
    int line = 1;
    std::string rawDelim; // for raw strings: ")delim\""

    auto comment = [&](char c) { scan.lineComments[line].push_back(c); };

    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        if (c == '\n') {
            scan.code[i] = '\n';
            ++line;
            scan.lineStart.push_back(i + 1);
            if (st == St::LineComment)
                st = St::Code;
            continue;
        }
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::LineComment;
                comment(c);
            } else if (c == '/' && n == '*') {
                st = St::BlockComment;
            } else if (c == '"') {
                // Raw string?  Look back for an R prefix (R, uR, u8R,
                // UR, LR) that is not part of a longer identifier.
                bool raw = false;
                if (i > 0 && in[i - 1] == 'R') {
                    std::size_t p = i - 1;
                    while (p > 0 && std::isalnum(
                                        static_cast<unsigned char>(in[p - 1])))
                        --p;
                    const std::string prefix = in.substr(p, i - p);
                    raw = prefix == "R" || prefix == "uR" || prefix == "u8R" ||
                          prefix == "UR" || prefix == "LR";
                }
                if (raw) {
                    rawDelim = ")";
                    for (std::size_t j = i + 1;
                         j < in.size() && in[j] != '('; ++j)
                        rawDelim.push_back(in[j]);
                    rawDelim.push_back('"');
                    st = St::RawStr;
                } else {
                    st = St::Str;
                }
                scan.code[i] = '"';
            } else if (c == '\'') {
                st = St::Chr;
                scan.code[i] = '\'';
            } else {
                scan.code[i] = c;
            }
            break;
        case St::LineComment:
            comment(c);
            break;
        case St::BlockComment:
            if (c == '*' && n == '/') {
                ++i;
                st = St::Code;
            }
            break;
        case St::Str:
            if (c == '\\')
                ++i; // skip escaped char (stays blanked)
            else if (c == '"') {
                scan.code[i] = '"';
                st = St::Code;
            }
            break;
        case St::Chr:
            if (c == '\\')
                ++i;
            else if (c == '\'') {
                scan.code[i] = '\'';
                st = St::Code;
            }
            break;
        case St::RawStr:
            if (c == rawDelim[0] &&
                in.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                scan.code[i] = '"';
                st = St::Code;
            }
            break;
        }
    }
    return scan;
}

int
lineOf(const Scan &scan, std::size_t offset)
{
    auto it = std::upper_bound(scan.lineStart.begin(), scan.lineStart.end(),
                               offset);
    return static_cast<int>(it - scan.lineStart.begin());
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::size_t>
findTokens(const std::string &code, const std::string &name, bool callParen)
{
    std::vector<std::size_t> hits;
    for (std::size_t pos = code.find(name); pos != std::string::npos;
         pos = code.find(name, pos + 1)) {
        if (pos > 0 && identChar(code[pos - 1]))
            continue;
        std::size_t end = pos + name.size();
        if (end < code.size() && identChar(code[end]))
            continue;
        if (callParen) {
            while (end < code.size() &&
                   (code[end] == ' ' || code[end] == '\t'))
                ++end;
            if (end >= code.size() || code[end] != '(')
                continue;
        }
        hits.push_back(pos);
    }
    return hits;
}

std::string
trimmed(std::string s)
{
    const auto notSpace = [](unsigned char c) { return !std::isspace(c); };
    s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
    s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
    return s;
}

bool
lineIsBlankCode(const Scan &scan, int line)
{
    if (line < 1 || line > static_cast<int>(scan.lineStart.size()))
        return true;
    std::size_t begin = scan.lineStart[line - 1];
    std::size_t end = line < static_cast<int>(scan.lineStart.size())
                          ? scan.lineStart[line]
                          : scan.code.size();
    for (std::size_t i = begin; i < end; ++i) {
        const char c = scan.code[i];
        if (!std::isspace(static_cast<unsigned char>(c)) && c != '"' &&
            c != '\'')
            return false;
    }
    return true;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

std::size_t
matchBracket(const std::string &code, std::size_t open, char opener,
             char closer)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == opener)
            ++depth;
        else if (code[i] == closer && --depth == 0)
            return i;
    }
    return open;
}

std::size_t
matchParen(const std::string &code, std::size_t open)
{
    return matchBracket(code, open, '(', ')');
}

} // namespace eval::lint
