#include "baseline.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "source_scan.hh"

namespace eval::lint {

std::string
baselineKey(const Diagnostic &d)
{
    return d.rule + "\t" + d.file + "\t" + std::to_string(d.line);
}

Baseline
loadBaseline(const std::filesystem::path &path, std::string *error)
{
    Baseline out;
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot read baseline file: " + path.string();
        return out;
    }
    out.loaded = true;
    std::string line;
    while (std::getline(in, line)) {
        const std::string entry = trimmed(line);
        if (entry.empty() || entry[0] == '#')
            continue;
        // Normalize whitespace between fields to single tabs so
        // hand-edited baselines still match.
        std::istringstream fields(entry);
        std::string rule, file, lineNo;
        if (!(fields >> rule >> file >> lineNo)) {
            if (error)
                *error = "malformed baseline entry: '" + entry + "'";
            out.loaded = false;
            return out;
        }
        out.keys.push_back(rule + "\t" + file + "\t" + lineNo);
    }
    return out;
}

BaselineSplit
applyBaseline(const std::vector<Diagnostic> &diags,
              const Baseline &baseline)
{
    BaselineSplit split;
    if (!baseline.loaded) {
        split.fresh = diags;
        return split;
    }
    const std::set<std::string> keys(baseline.keys.begin(),
                                     baseline.keys.end());
    std::set<std::string> used;
    for (const auto &d : diags) {
        const std::string key = baselineKey(d);
        if (keys.count(key)) {
            used.insert(key);
            split.baselined.push_back(d);
        } else {
            split.fresh.push_back(d);
        }
    }
    for (const auto &key : baseline.keys)
        if (!used.count(key))
            split.stale.push_back(key);
    return split;
}

std::string
renderBaseline(const std::vector<Diagnostic> &diags)
{
    std::ostringstream out;
    out << "# eval-lint baseline: known findings accepted for incremental\n"
           "# adoption.  One `<rule>\\t<file>\\t<line>` entry per line;\n"
           "# regenerate with `eval_lint --write-baseline <this file>`.\n"
           "# Fresh findings (not listed here) fail the run; stale\n"
           "# entries are reported so the baseline only ratchets down.\n";
    for (const auto &d : diags)
        out << baselineKey(d) << '\n';
    return out.str();
}

} // namespace eval::lint
