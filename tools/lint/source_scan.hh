/**
 * @file
 * Shared token-level source scanning for eval-lint.
 *
 * scanSource() blanks out comments and string/char literals so token
 * matching never fires inside them, while collecting `//`-comment text
 * per line for suppression and marker parsing.  The blanked copy has
 * the same length and the same newlines as the input, so offsets and
 * line numbers map one-to-one between the two.
 *
 * Both the phase-1 token rules (lint.cc) and the phase-1 semantic
 * indexer (index.cc) run over the same Scan, so a file is read and
 * state-machine-scanned exactly once per lint run.
 */

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace eval::lint {

struct Scan
{
    std::string code; ///< literals/comments blanked
    /** line -> `//`-comment text.  Only line comments can carry
     *  suppressions; block/doxygen comments are prose and may quote
     *  the suppression syntax without activating it.  The same
     *  applies to string literals (including raw strings): text that
     *  merely *mentions* `eval-lint: allow(...)` as data never
     *  activates or malforms a suppression. */
    std::map<int, std::string> lineComments;
    std::vector<std::size_t> lineStart; ///< offset of each line's start
};

/** Run the comment/string-stripping state machine over @p in. */
Scan scanSource(const std::string &in);

/** 1-based line number of @p offset in the scanned source. */
int lineOf(const Scan &scan, std::size_t offset);

/** Identifier character ([A-Za-z0-9_]). */
bool identChar(char c);

/** Find boundary-checked occurrences of @p name in blanked code.  With
 *  @p callParen the next non-space char must be '(' (a call site). */
std::vector<std::size_t> findTokens(const std::string &code,
                                    const std::string &name,
                                    bool callParen);

/** Strip leading/trailing whitespace. */
std::string trimmed(std::string s);

/** True iff @p line holds no code tokens (blank or comment-only). */
bool lineIsBlankCode(const Scan &scan, int line);

/** s starts with prefix. */
bool startsWith(const std::string &s, const char *prefix);

/** Offset of the ')' matching the '(' at @p open in @p code, or
 *  @p open itself when unbalanced (partial file). */
std::size_t matchParen(const std::string &code, std::size_t open);

/** Offset of the closer matching the opener at @p open for an
 *  arbitrary bracket pair (e.g. '{'/'}', '['/']'); @p open on
 *  imbalance. */
std::size_t matchBracket(const std::string &code, std::size_t open,
                         char opener, char closer);

} // namespace eval::lint
