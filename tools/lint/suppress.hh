/**
 * @file
 * Inline suppression and file-marker machinery for eval-lint.
 *
 * The audited suppression syntax (line comments only):
 *
 *     // eval-lint: allow(<rule>[,<rule>...]) <justification>
 *
 * A suppression with no justification text, or naming an unknown or
 * non-suppressible rule, is itself a finding (lint-bad-suppression); a
 * suppression that matches no finding is also a finding
 * (lint-unused-suppression) so stale allowances cannot accumulate.
 *
 * Two file-scope markers ride on the same comment channel:
 *
 *     // eval-lint: hot-path <why>       widens perf-hot-alloc scope
 *     // eval-lint: counters-only <why>  exempts the file from the
 *                                        atomics-relaxed audit (its
 *                                        relaxed atomics are monotone
 *                                        counters off the model path)
 *
 * Both markers carry a justification like suppressions do; a bare
 * marker is a lint-bad-suppression.  (hot-path historically allowed
 * an empty why; it now shares the audited form, and every in-tree
 * marker states its reason.)
 *
 * Rules prefixed `lint-` (the audit rules) and `lay-` (the layering
 * contract) are never inline-suppressible: layering exceptions belong
 * in tools/lint/layers.toml where the module boundary stays reviewable
 * in one place.
 */

#pragma once

#include <string>
#include <vector>

#include "source_scan.hh"

namespace eval::lint {

struct Diagnostic;

struct Suppression
{
    int line = 0;          ///< line the allow() comment sits on
    int coveredLine = 0;   ///< line whose findings it suppresses
    std::vector<std::string> rules;
    bool used = false;
};

/** File-scope markers parsed out of the comment stream. */
struct FileMarkers
{
    bool hotPath = false;
    bool countersOnly = false;
    int countersOnlyLine = 0;
};

/** True iff @p rule may never be silenced by an inline allow(). */
bool inlineUnsuppressible(const std::string &rule);

/** Parse suppressions and markers out of the collected comments.
 *  Malformed ones (no rule list, unknown rule, missing justification)
 *  become lint-bad-suppression findings immediately. */
std::vector<Suppression> parseSuppressions(const Scan &scan,
                                           const std::string &relPath,
                                           std::vector<Diagnostic> &diags,
                                           FileMarkers *markers = nullptr);

/** Drop suppressed findings, mark used suppressions, and report the
 *  unused ones.  @p diags holds every finding for @p relPath (token
 *  rules and project passes alike). */
void applySuppressions(std::vector<Diagnostic> &diags,
                       std::vector<Suppression> &supps,
                       const std::string &relPath);

} // namespace eval::lint
