/**
 * @file
 * eval_prof: analyze span profiles (profile.json) from the span
 * tracer and the shard fleet merge.
 *
 *   eval_prof tree PROFILE [--bottom-up] [--top=N]
 *       top-down call tree (children sorted by inclusive time), or
 *       with --bottom-up a leaf-centric view: spans ranked by total
 *       self time, each listing the call paths that produced it
 *   eval_prof flame PROFILE [--out=FILE]
 *       collapsed-stack lines ("a;b;c <self_us>") in Brendan Gregg's
 *       flamegraph.pl / speedscope format
 *   eval_prof diff OLD NEW [--top=N] [--threshold=PCT] [--gate]
 *       per-span self-time deltas, largest absolute change first.
 *       With --gate, exit 1 when any span's self time grew more than
 *       PCT percent (default 10; spans absent from OLD never gate —
 *       new code gets one free pass, growth does not)
 *
 * Exit codes: 0 ok, 1 gated regression (diff --gate only), 2 usage
 * or unreadable/malformed profile.  `diff` of a profile against
 * itself is all-zero deltas and exits 0, gated or not.
 *
 * The core is a library so tests can drive render/diff in-process
 * (mirrors the benchtrack/eval_top layout).  Parsing reuses
 * shard/trace_merge.hh, so eval_prof accepts exactly what the tracer
 * writes and what the fleet merge emits.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/trace_merge.hh"

namespace eval::prof {

/** One row of a profile diff (union of both profiles' paths). */
struct DiffRow
{
    std::string path;
    std::string name;
    std::uint64_t oldSelfNs = 0;
    std::uint64_t newSelfNs = 0;
    std::int64_t deltaSelfNs = 0; ///< new - old
    std::uint64_t oldCount = 0;
    std::uint64_t newCount = 0;
};

/** "1.234s" / "56.7ms" / "89.0us" / "123ns". */
std::string formatNs(std::uint64_t ns);

/** Top-down (or bottom-up) self-time tree; @p topN > 0 caps the
 *  printed rows (a trailing "... (N more)" line notes the cut). */
std::string renderTree(const SpanProfile &profile, bool bottomUp,
                       int topN);

/** Collapsed-stack flamegraph lines: one "path self_us" line per
 *  bucket with nonzero self time, sorted by path. */
std::string collapsedStacks(const SpanProfile &profile);

/** Self-time deltas over the union of paths, sorted by |delta|
 *  descending (ties by path). */
std::vector<DiffRow> diffProfiles(const SpanProfile &oldProfile,
                                  const SpanProfile &newProfile);

/** Render @p rows as a table; @p topN > 0 caps the rows. */
std::string renderDiff(const std::vector<DiffRow> &rows, int topN);

/** Whether any row regressed beyond @p thresholdPct percent of its
 *  old self time (rows with oldSelfNs == 0 never gate). */
bool hasRegression(const std::vector<DiffRow> &rows,
                   double thresholdPct);

/** CLI entry point; returns the process exit code. */
int runEvalProf(const std::vector<std::string> &args);

} // namespace eval::prof
