#include "eval_prof.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return eval::prof::runEvalProf(args);
}
