#include "eval_prof.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "valid/snapshot.hh"

namespace eval::prof {

namespace {

/** Whole-file slurp; false when the file cannot be opened. */
bool
readFileText(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

/** The path minus its leaf segment ("" for a root span). */
std::string
parentOf(const std::string &path)
{
    const std::size_t cut = path.rfind(';');
    return cut == std::string::npos ? std::string()
                                    : path.substr(0, cut);
}

/** Top-down trie over bucket paths.  A node may have no bucket of
 *  its own (its span never closed before export); it still renders,
 *  with dashes, so the chain stays visible. */
struct TreeNode
{
    const ProfileBucket *bucket = nullptr;
    std::map<std::string, TreeNode> children;

    std::uint64_t
    sortKeyInclNs() const
    {
        if (bucket)
            return bucket->inclNs;
        std::uint64_t sum = 0;
        for (const auto &[seg, child] : children)
            sum += child.sortKeyInclNs();
        return sum;
    }
};

void
insertPath(TreeNode &root, const ProfileBucket &bucket)
{
    TreeNode *node = &root;
    std::size_t begin = 0;
    while (begin <= bucket.path.size()) {
        std::size_t end = bucket.path.find(';', begin);
        if (end == std::string::npos)
            end = bucket.path.size();
        node = &node->children[bucket.path.substr(begin, end - begin)];
        begin = end + 1;
    }
    node->bucket = &bucket;
}

struct LineBudget
{
    int remaining; ///< negative = unlimited
    int skipped = 0;

    bool
    take()
    {
        if (remaining < 0)
            return true;
        if (remaining == 0) {
            ++skipped;
            return false;
        }
        --remaining;
        return true;
    }
};

void
renderNode(std::string &out, const std::string &seg,
           const TreeNode &node, int depth, LineBudget &budget)
{
    if (budget.take()) {
        char buf[160];
        const std::string indent(static_cast<std::size_t>(depth) * 2,
                                 ' ');
        if (node.bucket) {
            std::snprintf(
                buf, sizeof buf,
                "%-48s incl %9s  self %9s  x%llu\n",
                (indent + seg).c_str(),
                formatNs(node.bucket->inclNs).c_str(),
                formatNs(node.bucket->selfNs).c_str(),
                static_cast<unsigned long long>(node.bucket->count));
        } else {
            std::snprintf(buf, sizeof buf,
                          "%-48s incl %9s  self %9s  (open)\n",
                          (indent + seg).c_str(), "-", "-");
        }
        out += buf;
    } else {
        return; // budget exhausted: count this subtree as skipped
    }
    std::vector<const std::pair<const std::string, TreeNode> *> kids;
    for (const auto &child : node.children)
        kids.push_back(&child);
    std::stable_sort(kids.begin(), kids.end(),
                     [](const auto *a, const auto *b) {
                         return a->second.sortKeyInclNs() >
                                b->second.sortKeyInclNs();
                     });
    for (const auto *child : kids)
        renderNode(out, child->first, child->second, depth + 1, budget);
}

std::string
renderTopDown(const SpanProfile &profile, int topN)
{
    TreeNode root;
    for (const auto &[path, bucket] : profile)
        insertPath(root, bucket);

    std::string out;
    LineBudget budget{topN > 0 ? topN : -1};
    std::vector<const std::pair<const std::string, TreeNode> *> roots;
    for (const auto &child : root.children)
        roots.push_back(&child);
    std::stable_sort(roots.begin(), roots.end(),
                     [](const auto *a, const auto *b) {
                         return a->second.sortKeyInclNs() >
                                b->second.sortKeyInclNs();
                     });
    for (const auto *child : roots)
        renderNode(out, child->first, child->second, 0, budget);
    if (budget.skipped > 0)
        out += "... (" + std::to_string(budget.skipped) + " more)\n";
    return out;
}

std::string
renderBottomUp(const SpanProfile &profile, int topN)
{
    // Leaf-centric: rank names by total self time, then list every
    // call path that produced the name, hottest first.
    struct Leaf
    {
        std::uint64_t selfNs = 0;
        std::uint64_t count = 0;
        std::vector<const ProfileBucket *> sites;
    };
    std::map<std::string, Leaf> leaves;
    for (const auto &[path, bucket] : profile) {
        Leaf &leaf = leaves[bucket.name];
        leaf.selfNs += bucket.selfNs;
        leaf.count += bucket.count;
        leaf.sites.push_back(&bucket);
    }
    std::vector<std::pair<std::string, const Leaf *>> order;
    for (const auto &[name, leaf] : leaves)
        order.emplace_back(name, &leaf);
    std::stable_sort(order.begin(), order.end(),
                     [](const auto &a, const auto &b) {
                         return a.second->selfNs > b.second->selfNs;
                     });

    std::string out;
    LineBudget budget{topN > 0 ? topN : -1};
    char buf[160];
    for (const auto &[name, leaf] : order) {
        if (!budget.take())
            break;
        std::snprintf(buf, sizeof buf, "%-48s self %9s  x%llu\n",
                      name.c_str(), formatNs(leaf->selfNs).c_str(),
                      static_cast<unsigned long long>(leaf->count));
        out += buf;
        std::vector<const ProfileBucket *> sites = leaf->sites;
        std::stable_sort(sites.begin(), sites.end(),
                         [](const ProfileBucket *a,
                            const ProfileBucket *b) {
                             return a->selfNs > b->selfNs;
                         });
        for (const ProfileBucket *site : sites) {
            if (!budget.take())
                break;
            const std::string parent = parentOf(site->path);
            std::snprintf(
                buf, sizeof buf, "  %-46s self %9s  x%llu\n",
                (parent.empty() ? std::string("(root)")
                                : "from " + parent)
                    .c_str(),
                formatNs(site->selfNs).c_str(),
                static_cast<unsigned long long>(site->count));
            out += buf;
        }
    }
    if (budget.skipped > 0)
        out += "... (" + std::to_string(budget.skipped) + " more)\n";
    return out;
}

/** Load + parse a profile, reporting errors on stderr.  False on
 *  failure (caller exits 2). */
bool
loadProfile(const std::string &path, SpanProfile &out)
{
    std::string text;
    if (!readFileText(path, text)) {
        std::fprintf(stderr, "eval_prof: cannot read %s\n",
                     path.c_str());
        return false;
    }
    try {
        out = parseProfileJson(text);
    } catch (const SnapshotError &e) {
        std::fprintf(stderr, "eval_prof: %s: %s\n", path.c_str(),
                     e.what());
        return false;
    }
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: eval_prof tree PROFILE [--bottom-up] [--top=N]\n"
        "       eval_prof flame PROFILE [--out=FILE]\n"
        "       eval_prof diff OLD NEW [--top=N] [--threshold=PCT] "
        "[--gate]\n");
    return 2;
}

} // namespace

std::string
formatNs(std::uint64_t ns)
{
    char buf[32];
    if (ns >= 1000000000ull)
        std::snprintf(buf, sizeof buf, "%.3fs",
                      static_cast<double>(ns) / 1e9);
    else if (ns >= 1000000ull)
        std::snprintf(buf, sizeof buf, "%.1fms",
                      static_cast<double>(ns) / 1e6);
    else if (ns >= 1000ull)
        std::snprintf(buf, sizeof buf, "%.1fus",
                      static_cast<double>(ns) / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%lluns",
                      static_cast<unsigned long long>(ns));
    return buf;
}

std::string
renderTree(const SpanProfile &profile, bool bottomUp, int topN)
{
    return bottomUp ? renderBottomUp(profile, topN)
                    : renderTopDown(profile, topN);
}

std::string
collapsedStacks(const SpanProfile &profile)
{
    std::string out;
    for (const auto &[path, bucket] : profile) {
        const std::uint64_t selfUs = (bucket.selfNs + 500) / 1000;
        if (selfUs == 0)
            continue;
        out += path + " " + std::to_string(selfUs) + "\n";
    }
    return out;
}

std::vector<DiffRow>
diffProfiles(const SpanProfile &oldProfile,
             const SpanProfile &newProfile)
{
    std::map<std::string, DiffRow> rows;
    for (const auto &[path, bucket] : oldProfile) {
        DiffRow &row = rows[path];
        row.path = path;
        row.name = bucket.name;
        row.oldSelfNs = bucket.selfNs;
        row.oldCount = bucket.count;
    }
    for (const auto &[path, bucket] : newProfile) {
        DiffRow &row = rows[path];
        row.path = path;
        row.name = bucket.name;
        row.newSelfNs = bucket.selfNs;
        row.newCount = bucket.count;
    }
    std::vector<DiffRow> out;
    out.reserve(rows.size());
    for (auto &[path, row] : rows) {
        row.deltaSelfNs = static_cast<std::int64_t>(row.newSelfNs) -
                          static_cast<std::int64_t>(row.oldSelfNs);
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const DiffRow &a, const DiffRow &b) {
                  const std::int64_t ma = std::llabs(a.deltaSelfNs);
                  const std::int64_t mb = std::llabs(b.deltaSelfNs);
                  if (ma != mb)
                      return ma > mb;
                  return a.path < b.path;
              });
    return out;
}

std::string
renderDiff(const std::vector<DiffRow> &rows, int topN)
{
    std::string out =
        "span (path)                                      "
        "old self   new self      delta  counts\n";
    char buf[200];
    int printed = 0;
    for (const DiffRow &row : rows) {
        if (topN > 0 && printed >= topN) {
            out += "... (" +
                   std::to_string(rows.size() -
                                  static_cast<std::size_t>(printed)) +
                   " more)\n";
            break;
        }
        ++printed;
        const char sign = row.deltaSelfNs < 0 ? '-' : '+';
        const auto mag = static_cast<std::uint64_t>(
            std::llabs(row.deltaSelfNs));
        std::string pct;
        if (row.oldSelfNs > 0) {
            char pbuf[32];
            std::snprintf(pbuf, sizeof pbuf, " (%c%.1f%%)", sign,
                          100.0 *
                              static_cast<double>(mag) /
                              static_cast<double>(row.oldSelfNs));
            pct = pbuf;
        } else if (row.deltaSelfNs != 0) {
            pct = " (new)";
        }
        std::snprintf(
            buf, sizeof buf,
            "%-48s %9s  %9s  %c%8s%s  x%llu -> x%llu\n",
            row.path.c_str(), formatNs(row.oldSelfNs).c_str(),
            formatNs(row.newSelfNs).c_str(), sign,
            formatNs(mag).c_str(), pct.c_str(),
            static_cast<unsigned long long>(row.oldCount),
            static_cast<unsigned long long>(row.newCount));
        out += buf;
    }
    return out;
}

bool
hasRegression(const std::vector<DiffRow> &rows, double thresholdPct)
{
    for (const DiffRow &row : rows) {
        if (row.oldSelfNs == 0 || row.deltaSelfNs <= 0)
            continue;
        const double pct = 100.0 *
                           static_cast<double>(row.deltaSelfNs) /
                           static_cast<double>(row.oldSelfNs);
        if (pct > thresholdPct)
            return true;
    }
    return false;
}

int
runEvalProf(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const std::string &cmd = args[0];

    std::vector<std::string> positional;
    bool bottomUp = false;
    bool gate = false;
    int topN = 0;
    double thresholdPct = 10.0;
    std::string outFile;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--bottom-up") {
            bottomUp = true;
        } else if (a == "--gate") {
            gate = true;
        } else if (a.rfind("--top=", 0) == 0) {
            topN = std::atoi(a.c_str() + 6);
        } else if (a.rfind("--threshold=", 0) == 0) {
            thresholdPct = std::atof(a.c_str() + 12);
        } else if (a.rfind("--out=", 0) == 0) {
            outFile = a.substr(6);
        } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr, "eval_prof: unknown option %s\n",
                         a.c_str());
            return usage();
        } else {
            positional.push_back(a);
        }
    }

    if (cmd == "tree") {
        if (positional.size() != 1)
            return usage();
        SpanProfile profile;
        if (!loadProfile(positional[0], profile))
            return 2;
        std::fputs(renderTree(profile, bottomUp, topN).c_str(),
                   stdout);
        return 0;
    }
    if (cmd == "flame") {
        if (positional.size() != 1)
            return usage();
        SpanProfile profile;
        if (!loadProfile(positional[0], profile))
            return 2;
        const std::string lines = collapsedStacks(profile);
        if (outFile.empty()) {
            std::fputs(lines.c_str(), stdout);
        } else {
            std::ofstream out(outFile, std::ios::binary);
            if (!out || !(out << lines)) {
                std::fprintf(stderr,
                             "eval_prof: cannot write %s\n",
                             outFile.c_str());
                return 2;
            }
        }
        return 0;
    }
    if (cmd == "diff") {
        if (positional.size() != 2)
            return usage();
        SpanProfile oldProfile;
        SpanProfile newProfile;
        if (!loadProfile(positional[0], oldProfile) ||
            !loadProfile(positional[1], newProfile))
            return 2;
        const std::vector<DiffRow> rows =
            diffProfiles(oldProfile, newProfile);
        std::fputs(renderDiff(rows, topN > 0 ? topN : 20).c_str(),
                   stdout);
        if (gate && hasRegression(rows, thresholdPct)) {
            std::fprintf(stderr,
                         "eval_prof: self-time regression beyond "
                         "%.1f%%\n",
                         thresholdPct);
            return 1;
        }
        return 0;
    }
    return usage();
}

} // namespace eval::prof
