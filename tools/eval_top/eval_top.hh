/**
 * @file
 * eval_top: a terminal dashboard over the live status files the
 * MetricsSampler publishes (src/obs/metrics_sampler.hh).
 *
 *   eval_top RUN.status.json              refreshing dashboard
 *   eval_top DIR                          every *.json status file in
 *                                         DIR (multi-process shard
 *                                         campaigns: one file per run)
 *   eval_top --once RUN.status.json       render one frame and exit
 *   eval_top --once --json RUN.status.json machine-readable summary
 *                                         (CI smoke, scripting)
 *   --interval-ms=N   poll period (default 500)
 *   --top=N           hottest-stats rows per run (default 5)
 *
 * The dashboard shows, per run: a progress bar per tracker with
 * done/total, completion %, units/sec, and ETA; RSS (current/peak),
 * CPU time, and thread count; and the top-N hottest stats by
 * delta-per-second between polls.  When more than one run is valid
 * (tailing a sharded campaign's status dir) a fleet footer sums
 * progress, rate, combined ETA, and RSS across the shards; --json
 * exports the same aggregate as a "fleet" object.
 * Reading is safe while the sampler
 * rewrites the file because publication is rename-into-place — a
 * reader sees the old or the new snapshot, never a torn write.
 *
 * The core is a library so tests can drive parse/render in-process.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eval::top {

/** One tracker's progress as read from a status file. */
struct ProgressRow
{
    std::string name;
    std::uint64_t total = 0;
    std::uint64_t done = 0;
    double fraction = 0.0;
    double ratePerS = 0.0;
    double etaS = -1.0;
    double elapsedS = 0.0;
};

/** One parsed status snapshot (or a parse failure). */
struct RunStatus
{
    std::string path;
    bool valid = false;
    std::string error;      ///< set when !valid

    std::string tool;
    long pid = 0;
    std::uint64_t seq = 0;
    bool final = false;
    double uptimeS = 0.0;
    std::uint64_t intervalMs = 0;
    long rssKb = 0;
    long peakRssKb = 0;
    long threads = 0;
    double cpuUserS = 0.0;
    double cpuSysS = 0.0;
    std::vector<ProgressRow> progress;
    std::vector<std::pair<std::string, double>> stats;
};

/** Aggregate view over a multi-run (sharded) campaign: one footer
 *  row summing the per-shard dashboards.  Progress folds each run's
 *  "chips" tracker (first tracker when a run has no "chips"), so the
 *  fleet rate/ETA line up with what the shard workers publish. */
struct FleetSummary
{
    std::size_t runs = 0;       ///< valid runs folded in
    std::size_t finished = 0;   ///< valid runs with final == true
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    double ratePerS = 0.0;      ///< sum of per-run rates
    double etaS = -1.0;         ///< remaining/rate; -1 = unknown
    long rssKb = 0;             ///< sum over valid runs
    long peakRssKb = 0;         ///< sum over valid runs
};

/** Fold @p runs into the fleet footer (invalid runs are skipped). */
FleetSummary fleetSummary(const std::vector<RunStatus> &runs);

/** Parse one status document.  Never throws: malformed input yields
 *  valid == false with the parse error recorded. */
RunStatus parseStatus(const std::string &text, const std::string &path);

/** Read + parse @p path (valid == false with error on I/O failure). */
RunStatus readStatusFile(const std::string &path);

/** Status files under @p path: the file itself, or every regular
 *  *.json file directly inside the directory (skipping the sampler's
 *  transient *.tmp), sorted by name. */
std::vector<std::string> discoverStatusFiles(const std::string &path);

/** "[#####---------]" bar for a [0,1] fraction. */
std::string progressBar(double fraction, std::size_t width);

/** "1.2s" / "3m04s" / "2h07m"; "--" for negative (unknown). */
std::string formatDuration(double seconds);

/**
 * Render the dashboard frame for @p runs.  @p previous holds the
 * prior poll keyed by path and drives the hottest-stats
 * delta-per-second ranking (empty map: section omitted).
 */
std::string render(const std::vector<RunStatus> &runs,
                   const std::map<std::string, RunStatus> &previous,
                   int topN);

/** Machine-readable frame: {"runs": [...]} via the strict JSON
 *  writer (scripting / CI mode). */
std::string renderJson(const std::vector<RunStatus> &runs);

/** CLI entry point; returns the process exit code (0 ok, 1 no status
 *  file found / all invalid, 2 usage). */
int runEvalTop(const std::vector<std::string> &args);

} // namespace eval::top
