#include "eval_top.hh"

#include "valid/json_value.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

namespace eval::top {
namespace {

constexpr int kDefaultIntervalMs = 500;
constexpr int kDefaultTopN = 5;
constexpr std::size_t kBarWidth = 24;

/** Longest tracker-name column we will pad to (keeps one absurdly
 *  long name from blowing out the whole table). */
constexpr std::size_t kNameColCap = 28;

std::string
slurp(const std::string &path, bool &ok)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        ok = false;
        return {};
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    ok = true;
    return text;
}

double
numberOr(const JsonValue &obj, const std::string &key, double fallback)
{
    if (!obj.has(key))
        return fallback;
    const JsonValue &v = obj.at(key);
    return v.isNumber() ? v.asDouble() : fallback;
}

std::int64_t
intOr(const JsonValue &obj, const std::string &key, std::int64_t fallback)
{
    if (!obj.has(key))
        return fallback;
    const JsonValue &v = obj.at(key);
    return v.isNumber() ? v.asInt() : fallback;
}

std::string
formatRate(double perS)
{
    char buf[64];
    if (perS >= 1000.0)
        std::snprintf(buf, sizeof buf, "%.3g/s", perS);
    else if (perS >= 1.0)
        std::snprintf(buf, sizeof buf, "%.1f/s", perS);
    else
        std::snprintf(buf, sizeof buf, "%.3f/s", perS);
    return buf;
}

std::string
formatMib(long kb)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f MiB", static_cast<double>(kb) / 1024.0);
    return buf;
}

void
renderRun(std::string &out, const RunStatus &run,
          const std::map<std::string, RunStatus> &previous, int topN)
{
    char line[512];
    if (!run.valid) {
        std::snprintf(line, sizeof line, "[%s] UNREADABLE: %s\n",
                      run.path.c_str(), run.error.c_str());
        out += line;
        return;
    }

    const char *state = run.final ? "FINISHED" : "RUNNING";
    std::snprintf(line, sizeof line,
                  "[%s] pid %ld  seq %llu  %s  up %s\n", run.tool.c_str(),
                  run.pid, static_cast<unsigned long long>(run.seq), state,
                  formatDuration(run.uptimeS).c_str());
    out += line;
    std::snprintf(line, sizeof line,
                  "  rss %s (peak %s)  cpu %.1fu+%.1fs  threads %ld  (%s)\n",
                  formatMib(run.rssKb).c_str(),
                  formatMib(run.peakRssKb).c_str(), run.cpuUserS, run.cpuSysS,
                  run.threads, run.path.c_str());
    out += line;

    std::size_t nameCol = 0;
    for (const ProgressRow &p : run.progress)
        nameCol = std::max(nameCol, p.name.size());
    nameCol = std::min(nameCol, kNameColCap);

    for (const ProgressRow &p : run.progress) {
        std::string name = p.name;
        if (name.size() > kNameColCap)
            name = name.substr(0, kNameColCap - 1) + "~";
        std::snprintf(
            line, sizeof line,
            "  %-*s %s %5.1f%%  %llu/%llu  %s  eta %s\n",
            static_cast<int>(nameCol), name.c_str(),
            progressBar(p.fraction, kBarWidth).c_str(), p.fraction * 100.0,
            static_cast<unsigned long long>(p.done),
            static_cast<unsigned long long>(p.total),
            formatRate(p.ratePerS).c_str(), formatDuration(p.etaS).c_str());
        out += line;
    }

    // Hottest stats: ranked by |delta per second| against the previous
    // poll of the same file.  First frame has no baseline, so the
    // section simply does not appear until the second poll.
    auto prevIt = previous.find(run.path);
    if (topN <= 0 || prevIt == previous.end() || !prevIt->second.valid)
        return;
    const RunStatus &prev = prevIt->second;
    double dt = run.uptimeS - prev.uptimeS;
    if (dt <= 0.0)
        return;
    std::map<std::string, double> before;
    for (const auto &[name, value] : prev.stats)
        before[name] = value;
    std::vector<std::pair<std::string, double>> hottest;
    for (const auto &[name, value] : run.stats) {
        auto it = before.find(name);
        if (it == before.end())
            continue;
        double rate = (value - it->second) / dt;
        if (std::fabs(rate) > 0.0)
            hottest.emplace_back(name, rate);
    }
    std::sort(hottest.begin(), hottest.end(),
              [](const auto &a, const auto &b) {
                  if (std::fabs(a.second) != std::fabs(b.second))
                      return std::fabs(a.second) > std::fabs(b.second);
                  return a.first < b.first;
              });
    if (hottest.size() > static_cast<std::size_t>(topN))
        hottest.resize(static_cast<std::size_t>(topN));
    if (hottest.empty())
        return;
    out += "  hottest stats (delta/s since last poll):\n";
    for (const auto &[name, rate] : hottest) {
        std::snprintf(line, sizeof line, "    %-40s %+.4g/s\n", name.c_str(),
                      rate);
        out += line;
    }
}

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: eval_top [options] <status.json | directory>\n"
        "\n"
        "Live dashboard over MetricsSampler status files (see\n"
        "--status-out / EVAL_STATUS_OUT on the bench drivers).\n"
        "\n"
        "options:\n"
        "  --once             render a single frame and exit\n"
        "  --json             machine-readable output (implies --once)\n"
        "  --interval-ms=N    poll period in ms (default 500)\n"
        "  --top=N            hottest-stat rows per run (default 5)\n"
        "  --help             this text\n",
        to);
}

} // namespace

RunStatus
parseStatus(const std::string &text, const std::string &path)
{
    RunStatus rs;
    rs.path = path;
    try {
        JsonValue doc = JsonValue::parse(text);
        if (doc.type() != JsonValue::Type::Object)
            throw std::runtime_error("status document is not an object");
        if (doc.has("tool"))
            rs.tool = doc.at("tool").asString();
        rs.pid = static_cast<long>(intOr(doc, "pid", 0));
        rs.seq = static_cast<std::uint64_t>(intOr(doc, "seq", 0));
        if (doc.has("final"))
            rs.final = doc.at("final").asBool();
        rs.uptimeS = numberOr(doc, "uptime_s", 0.0);
        rs.intervalMs = static_cast<std::uint64_t>(intOr(doc, "interval_ms", 0));
        if (doc.has("resources")) {
            const JsonValue &res = doc.at("resources");
            rs.rssKb = static_cast<long>(intOr(res, "rss_kb", 0));
            rs.peakRssKb = static_cast<long>(intOr(res, "peak_rss_kb", 0));
            rs.threads = static_cast<long>(intOr(res, "threads", 0));
            rs.cpuUserS = numberOr(res, "cpu_user_s", 0.0);
            rs.cpuSysS = numberOr(res, "cpu_sys_s", 0.0);
        }
        if (doc.has("progress")) {
            for (const JsonValue &item : doc.at("progress").asArray()) {
                ProgressRow row;
                if (item.has("name"))
                    row.name = item.at("name").asString();
                row.total = static_cast<std::uint64_t>(intOr(item, "total", 0));
                row.done = static_cast<std::uint64_t>(intOr(item, "done", 0));
                row.fraction = numberOr(item, "fraction", 0.0);
                row.ratePerS = numberOr(item, "rate_per_s", 0.0);
                row.etaS = numberOr(item, "eta_s", -1.0);
                row.elapsedS = numberOr(item, "elapsed_s", 0.0);
                rs.progress.push_back(std::move(row));
            }
        }
        if (doc.has("stats")) {
            for (const auto &[name, value] : doc.at("stats").asObject()) {
                if (value.isNumber())
                    rs.stats.emplace_back(name, value.asDouble());
            }
        }
        rs.valid = true;
    } catch (const std::exception &e) {
        rs.valid = false;
        rs.error = e.what();
        rs.progress.clear();
        rs.stats.clear();
    }
    return rs;
}

RunStatus
readStatusFile(const std::string &path)
{
    bool ok = false;
    std::string text = slurp(path, ok);
    if (!ok) {
        RunStatus rs;
        rs.path = path;
        rs.error = "cannot open file";
        return rs;
    }
    return parseStatus(text, path);
}

std::vector<std::string>
discoverStatusFiles(const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        std::vector<std::string> files;
        for (const auto &entry : fs::directory_iterator(path, ec)) {
            if (!entry.is_regular_file(ec))
                continue;
            if (entry.path().extension() == ".json")
                files.push_back(entry.path().string());
        }
        std::sort(files.begin(), files.end());
        return files;
    }
    if (fs::is_regular_file(path, ec))
        return {path};
    return {};
}

std::string
progressBar(double fraction, std::size_t width)
{
    fraction = std::clamp(fraction, 0.0, 1.0);
    std::size_t filled =
        static_cast<std::size_t>(std::lround(fraction * static_cast<double>(width)));
    std::string bar = "[";
    bar.append(filled, '#');
    bar.append(width - filled, '-');
    bar += "]";
    return bar;
}

std::string
formatDuration(double seconds)
{
    if (seconds < 0.0 || !std::isfinite(seconds))
        return "--";
    char buf[64];
    if (seconds < 60.0) {
        std::snprintf(buf, sizeof buf, "%.1fs", seconds);
    } else if (seconds < 3600.0) {
        long m = static_cast<long>(seconds) / 60;
        long s = static_cast<long>(seconds) % 60;
        std::snprintf(buf, sizeof buf, "%ldm%02lds", m, s);
    } else {
        long h = static_cast<long>(seconds) / 3600;
        long m = (static_cast<long>(seconds) % 3600) / 60;
        std::snprintf(buf, sizeof buf, "%ldh%02ldm", h, m);
    }
    return buf;
}

FleetSummary
fleetSummary(const std::vector<RunStatus> &runs)
{
    FleetSummary fleet;
    for (const RunStatus &run : runs) {
        if (!run.valid)
            continue;
        ++fleet.runs;
        if (run.final)
            ++fleet.finished;
        fleet.rssKb += run.rssKb;
        fleet.peakRssKb += run.peakRssKb;
        const ProgressRow *row = nullptr;
        for (const ProgressRow &p : run.progress) {
            if (p.name == "chips") {
                row = &p;
                break;
            }
        }
        if (row == nullptr && !run.progress.empty())
            row = &run.progress.front();
        if (row != nullptr) {
            fleet.done += row->done;
            fleet.total += row->total;
            fleet.ratePerS += row->ratePerS;
        }
    }
    if (fleet.total > 0 && fleet.done >= fleet.total)
        fleet.etaS = 0.0;
    else if (fleet.ratePerS > 0.0)
        fleet.etaS = static_cast<double>(fleet.total - fleet.done) /
                     fleet.ratePerS;
    return fleet;
}

std::string
render(const std::vector<RunStatus> &runs,
       const std::map<std::string, RunStatus> &previous, int topN)
{
    std::size_t finished = 0;
    for (const RunStatus &run : runs)
        if (run.valid && run.final)
            ++finished;
    char header[128];
    std::snprintf(header, sizeof header,
                  "eval_top — %zu run(s), %zu finished\n\n", runs.size(),
                  finished);
    std::string out = header;
    for (const RunStatus &run : runs) {
        renderRun(out, run, previous, topN);
        out += "\n";
    }

    // Sharded campaigns (one status file per worker) get a fleet
    // footer: summed progress/rate, the combined ETA, and total RSS.
    const FleetSummary fleet = fleetSummary(runs);
    if (fleet.runs > 1) {
        char line[256];
        std::snprintf(line, sizeof line,
                      "fleet: %zu/%zu runs done  %llu/%llu units  "
                      "%s  eta %s  rss %s (peak %s)\n",
                      fleet.finished, fleet.runs,
                      static_cast<unsigned long long>(fleet.done),
                      static_cast<unsigned long long>(fleet.total),
                      formatRate(fleet.ratePerS).c_str(),
                      formatDuration(fleet.etaS).c_str(),
                      formatMib(fleet.rssKb).c_str(),
                      formatMib(fleet.peakRssKb).c_str());
        out += line;
    }
    return out;
}

std::string
renderJson(const std::vector<RunStatus> &runs)
{
    JsonValue root = JsonValue::object();
    JsonValue arr = JsonValue::array();
    for (const RunStatus &run : runs) {
        JsonValue r = JsonValue::object();
        r.set("path", run.path);
        r.set("valid", run.valid);
        if (!run.valid) {
            r.set("error", run.error);
            arr.push(std::move(r));
            continue;
        }
        r.set("tool", run.tool);
        r.set("pid", static_cast<std::int64_t>(run.pid));
        r.set("seq", run.seq);
        r.set("final", run.final);
        r.set("uptime_s", run.uptimeS);
        r.set("interval_ms", run.intervalMs);
        JsonValue res = JsonValue::object();
        res.set("rss_kb", static_cast<std::int64_t>(run.rssKb));
        res.set("peak_rss_kb", static_cast<std::int64_t>(run.peakRssKb));
        res.set("cpu_user_s", run.cpuUserS);
        res.set("cpu_sys_s", run.cpuSysS);
        res.set("threads", static_cast<std::int64_t>(run.threads));
        r.set("resources", std::move(res));
        JsonValue progress = JsonValue::array();
        for (const ProgressRow &p : run.progress) {
            JsonValue row = JsonValue::object();
            row.set("name", p.name);
            row.set("total", p.total);
            row.set("done", p.done);
            row.set("fraction", p.fraction);
            row.set("rate_per_s", p.ratePerS);
            row.set("eta_s", p.etaS);
            row.set("elapsed_s", p.elapsedS);
            progress.push(std::move(row));
        }
        r.set("progress", std::move(progress));
        JsonValue stats = JsonValue::object();
        for (const auto &[name, value] : run.stats)
            stats.set(name, value);
        r.set("stats", std::move(stats));
        arr.push(std::move(r));
    }
    root.set("runs", std::move(arr));

    const FleetSummary fleet = fleetSummary(runs);
    if (fleet.runs > 1) {
        JsonValue f = JsonValue::object();
        f.set("runs", static_cast<std::int64_t>(fleet.runs));
        f.set("finished", static_cast<std::int64_t>(fleet.finished));
        f.set("done", fleet.done);
        f.set("total", fleet.total);
        f.set("rate_per_s", fleet.ratePerS);
        f.set("eta_s", fleet.etaS);
        f.set("rss_kb", static_cast<std::int64_t>(fleet.rssKb));
        f.set("peak_rss_kb",
              static_cast<std::int64_t>(fleet.peakRssKb));
        root.set("fleet", std::move(f));
    }
    return root.dump(2) + "\n";
}

int
runEvalTop(const std::vector<std::string> &args)
{
    bool once = false;
    bool json = false;
    int intervalMs = kDefaultIntervalMs;
    int topN = kDefaultTopN;
    std::string target;

    auto intFlag = [](const std::string &arg, const char *prefix,
                      int &out) {
        std::size_t len = std::strlen(prefix);
        if (arg.compare(0, len, prefix) != 0)
            return false;
        out = std::atoi(arg.c_str() + len);
        return true;
    };

    for (const std::string &arg : args) {
        if (arg == "--once") {
            once = true;
        } else if (arg == "--json") {
            json = true;
            once = true;
        } else if (intFlag(arg, "--interval-ms=", intervalMs) ||
                   intFlag(arg, "--top=", topN)) {
            // handled by intFlag
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "eval_top: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else if (target.empty()) {
            target = arg;
        } else {
            std::fprintf(stderr, "eval_top: more than one path given\n");
            usage(stderr);
            return 2;
        }
    }
    if (target.empty()) {
        usage(stderr);
        return 2;
    }
    if (intervalMs < 50)
        intervalMs = 50;

    std::map<std::string, RunStatus> previous;
    for (;;) {
        std::vector<std::string> files = discoverStatusFiles(target);
        if (files.empty()) {
            std::fprintf(stderr, "eval_top: no status files at '%s'\n",
                         target.c_str());
            return 1;
        }
        std::vector<RunStatus> runs;
        runs.reserve(files.size());
        for (const std::string &file : files)
            runs.push_back(readStatusFile(file));

        bool anyValid = false;
        bool allFinal = true;
        for (const RunStatus &run : runs) {
            anyValid = anyValid || run.valid;
            allFinal = allFinal && run.valid && run.final;
        }

        if (json) {
            std::fputs(renderJson(runs).c_str(), stdout);
        } else {
            if (!once)
                std::fputs("\x1b[2J\x1b[H", stdout); // clear + home
            std::fputs(render(runs, previous, topN).c_str(), stdout);
        }
        std::fflush(stdout);

        if (once)
            return anyValid ? 0 : 1;
        if (allFinal)
            return 0;

        previous.clear();
        for (RunStatus &run : runs)
            previous.emplace(run.path, std::move(run));
        std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
    }
}

} // namespace eval::top
